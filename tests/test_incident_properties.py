"""Hypothesis property tests over labelled incident generation.

Four invariants, over every archetype (paper-era and adversarial) and
arbitrary seeds:

* windows — specs and their fault/churn schedules stay inside the
  world horizon and inside the spec's own [start, start+duration);
* non-empty fault masks — every fault a spec carries applies to at
  least one live ⟨location, path, prefix⟩, and a flash crowd's surge
  targets a populated metro (a dead schedule could never be validated);
* label consistency — expected_segment/expected_culprit_asn agree with
  the archetype's contract, including after documented fallbacks;
* byte-determinism — same seed, same bytes; and because each incident
  draws from its own spawned substream, a batch prefix is stable no
  matter how many more incidents follow it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.faults import SegmentKind
from repro.sim.incidents import (
    ADVERSARIAL_ARCHETYPES,
    PAPER_ARCHETYPES,
    IncidentArchetype,
    generate_incidents,
)

ALL_FAMILIES = PAPER_ARCHETYPES + ADVERSARIAL_ARCHETYPES

#: The labelling contract per archetype (None = negative expectation).
EXPECTED_SEGMENT = {
    IncidentArchetype.CLOUD_MAINTENANCE: SegmentKind.CLOUD,
    IncidentArchetype.CLOUD_OVERLOAD: SegmentKind.CLOUD,
    IncidentArchetype.PEERING_FAULT: SegmentKind.MIDDLE,
    IncidentArchetype.TRAFFIC_SHIFT: SegmentKind.MIDDLE,
    IncidentArchetype.CLIENT_ISP: SegmentKind.CLIENT,
    IncidentArchetype.CORRELATED_TRANSIT: SegmentKind.MIDDLE,
    IncidentArchetype.ANYCAST_FLAP: SegmentKind.CLOUD,
    IncidentArchetype.INTER_REGION_PEERING: SegmentKind.MIDDLE,
    IncidentArchetype.FLASH_CROWD: None,
}

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _all_specs(world, seed: int):
    return generate_incidents(
        world, len(ALL_FAMILIES), np.random.default_rng(seed),
        families=ALL_FAMILIES,
    )


class TestWindows:
    @SETTINGS
    @given(seed=seeds)
    def test_specs_and_schedules_inside_horizon(self, suite_world, seed):
        horizon = suite_world.params.horizon_buckets
        for spec in _all_specs(suite_world, seed):
            assert 0 <= spec.start < horizon
            assert spec.duration >= 1
            assert spec.start + spec.duration <= horizon
            window = (spec.start, spec.start + spec.duration)
            for fault in spec.faults:
                assert window[0] <= fault.start
                assert fault.start + fault.duration <= window[1]
            for reroute in spec.reroutes:
                assert window[0] <= reroute.time <= window[1]
            for surge in spec.surges:
                assert window[0] <= surge.start
                assert surge.start + surge.duration <= window[1]
            for flap in spec.ring_flaps:
                assert window[0] <= flap.start
                assert flap.start + flap.duration <= window[1]


class TestFaultMasks:
    @SETTINGS
    @given(seed=seeds)
    def test_every_fault_applies_to_a_live_path(self, suite_world, seed):
        """No dead schedules: each fault targets something that exists."""
        paths = []
        for slot in suite_world.slots:
            path = suite_world.mapper.path_for(slot.location, slot.client)
            if path is not None:
                paths.append((slot, path))
        metros = {c.metro.name for c in suite_world.population}
        for spec in _all_specs(suite_world, seed):
            for fault in spec.faults:
                assert any(
                    fault.applies_to(
                        slot.location.location_id,
                        path,
                        slot.client.prefix24,
                        slot.client.asn,
                    )
                    for slot, path in paths
                ), f"{spec.archetype}: fault {fault.fault_id} targets nothing"
            for surge in spec.surges:
                assert surge.metro_name in metros
                assert surge.multiplier > 1.0


class TestLabels:
    @SETTINGS
    @given(seed=seeds)
    def test_labels_follow_archetype_contract(self, suite_world, seed):
        for spec in _all_specs(suite_world, seed):
            expected = EXPECTED_SEGMENT[spec.archetype]
            assert spec.expected_segment is expected
            if expected is SegmentKind.CLOUD:
                assert spec.expected_culprit_asn == suite_world.cloud_asn
            elif expected is None:
                assert spec.expected_culprit_asn is None
                assert spec.surges and not spec.faults
            else:
                assert spec.expected_culprit_asn is not None
                assert spec.faults

    @SETTINGS
    @given(seed=seeds)
    def test_middle_and_client_culprits_match_fault_targets(
        self, suite_world, seed
    ):
        for spec in _all_specs(suite_world, seed):
            if spec.expected_segment in (SegmentKind.MIDDLE, SegmentKind.CLIENT):
                if spec.faults:
                    assert {f.target.asn for f in spec.faults} == {
                        spec.expected_culprit_asn
                    }


class TestDeterminism:
    @SETTINGS
    @given(seed=seeds)
    def test_same_seed_same_bytes(self, suite_world, seed):
        a = _all_specs(suite_world, seed)
        b = _all_specs(suite_world, seed)
        assert a == b

    @SETTINGS
    @given(seed=seeds, prefix=st.integers(min_value=1, max_value=8))
    def test_batch_prefix_stable_under_growth(self, suite_world, seed, prefix):
        """Spawned substreams: incident ``k`` depends only on (seed, k,
        family) — generating a longer batch never perturbs the prefix."""
        full = _all_specs(suite_world, seed)
        short = generate_incidents(
            suite_world, prefix, np.random.default_rng(seed),
            families=ALL_FAMILIES,
        )
        assert full[:prefix] == short

    @SETTINGS
    @given(seed=seeds, first_id=st.integers(min_value=0, max_value=10_000))
    def test_first_id_offsets_every_incident_id(
        self, suite_world, seed, first_id
    ):
        specs = generate_incidents(
            suite_world, 4, np.random.default_rng(seed),
            families=ALL_FAMILIES, first_id=first_id,
        )
        assert [s.incident_id for s in specs] == [
            first_id + k for k in range(4)
        ]
