"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main

FAST = ["--seed", "3", "--regions", "USA", "Europe", "--days", "1", "--locations", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_region_parsing(self):
        args = build_parser().parse_args(["simulate", "--regions", "usa", "east_asia"])
        names = {r.name for r in args.regions}
        assert names == {"USA", "EAST_ASIA"}

    def test_unknown_region_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--regions", "Atlantis"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", *FAST]) == 0
        out = capsys.readouterr().out
        assert "simulated world" in out
        assert "client /24s" in out
        assert "fault mix" in out

    def test_characterize(self, capsys):
        assert main(["characterize", *FAST, "--start", "150", "--end", "220"]) == 0
        out = capsys.readouterr().out
        assert "prevalence" in out
        assert "USA" in out

    def test_diagnose(self, capsys):
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "200", "--budget", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "blame mix" in out
        assert "probes:" in out

    def test_diagnose_with_reverse(self, capsys):
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "180", "--reverse"]
        )
        assert code == 0
        assert "reverse" in capsys.readouterr().out

    def test_validate(self, capsys):
        code = main(
            ["validate", "--seed", "42", "--regions", "USA", "Europe",
             "--days", "1", "--locations", "2", "--incidents", "5"]
        )
        out = capsys.readouterr().out
        assert "incident validation" in out
        assert "5/5" in out
        assert code == 0


class TestPersistence:
    def test_simulate_save_then_diagnose_load(self, tmp_path, capsys):
        spec = tmp_path / "scenario.json"
        assert main(["simulate", *FAST, "--save", str(spec)]) == 0
        assert spec.exists()
        report = tmp_path / "report.json"
        code = main(
            [
                "diagnose", *FAST,
                "--scenario", str(spec),
                "--start", "150", "--end", "180",
                "--save-report", str(report),
            ]
        )
        assert code == 0
        assert report.exists()
        out = capsys.readouterr().out
        assert "report written" in out


class TestMetricsJson:
    def test_diagnose_writes_valid_snapshot(self, tmp_path, capsys):
        import json

        from repro.obs import PHASE_SPANS, validate_snapshot

        out_file = tmp_path / "metrics.json"
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "200",
             "--metrics-json", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase seconds:" in out
        assert "metrics snapshot written" in out
        snapshot = json.loads(out_file.read_text(encoding="utf-8"))
        validate_snapshot(snapshot, require_spans=PHASE_SPANS)
        assert snapshot["counters"]["pipeline.buckets"] == 50
        assert snapshot["counters"]["pipeline.quartets"] > 0

    def test_diagnose_without_flag_records_nothing(self, capsys):
        code = main(["diagnose", *FAST, "--start", "150", "--end", "160"])
        assert code == 0
        assert "phase seconds" not in capsys.readouterr().out
