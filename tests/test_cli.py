"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main

FAST = ["--seed", "3", "--regions", "USA", "Europe", "--days", "1", "--locations", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_region_parsing(self):
        args = build_parser().parse_args(["simulate", "--regions", "usa", "east_asia"])
        names = {r.name for r in args.regions}
        assert names == {"USA", "EAST_ASIA"}

    def test_unknown_region_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--regions", "Atlantis"])


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", *FAST]) == 0
        out = capsys.readouterr().out
        assert "simulated world" in out
        assert "client /24s" in out
        assert "fault mix" in out

    def test_characterize(self, capsys):
        assert main(["characterize", *FAST, "--start", "150", "--end", "220"]) == 0
        out = capsys.readouterr().out
        assert "prevalence" in out
        assert "USA" in out

    def test_diagnose(self, capsys):
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "200", "--budget", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "blame mix" in out
        assert "probes:" in out

    def test_diagnose_with_reverse(self, capsys):
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "180", "--reverse"]
        )
        assert code == 0
        assert "reverse" in capsys.readouterr().out

    def test_validate(self, capsys):
        code = main(
            ["validate", "--seed", "42", "--regions", "USA", "Europe",
             "--days", "1", "--locations", "2", "--incidents", "5"]
        )
        out = capsys.readouterr().out
        assert "incident validation" in out
        assert "5/5" in out
        assert code == 0


class TestPersistence:
    def test_simulate_save_then_diagnose_load(self, tmp_path, capsys):
        spec = tmp_path / "scenario.json"
        assert main(["simulate", *FAST, "--save", str(spec)]) == 0
        assert spec.exists()
        report = tmp_path / "report.json"
        code = main(
            [
                "diagnose", *FAST,
                "--scenario", str(spec),
                "--start", "150", "--end", "180",
                "--save-report", str(report),
            ]
        )
        assert code == 0
        assert report.exists()
        out = capsys.readouterr().out
        assert "report written" in out


class TestExitCodes:
    """Invalid input exits with code 2 and a one-line error — never a
    traceback (the driver scripts depend on the exit code)."""

    def _check_usage_error(self, argv, capsys, fragment):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert fragment in err

    def test_diagnose_rejects_reversed_range(self, capsys):
        self._check_usage_error(
            ["diagnose", *FAST, "--start", "200", "--end", "150"],
            capsys, "--end must be > --start",
        )

    def test_diagnose_rejects_end_beyond_horizon(self, capsys):
        self._check_usage_error(
            ["diagnose", *FAST, "--start", "150", "--end", "100000"],
            capsys, "beyond the scenario horizon",
        )

    def test_diagnose_rejects_negative_start(self, capsys):
        self._check_usage_error(
            ["diagnose", *FAST, "--start", "-5", "--end", "150"],
            capsys, "--start must be >= 0",
        )

    def test_diagnose_rejects_negative_budget(self, capsys):
        self._check_usage_error(
            ["diagnose", *FAST, "--start", "150", "--end", "160",
             "--budget", "-1"],
            capsys, "--budget must be >= 0",
        )

    def test_diagnose_rejects_missing_scenario_file(self, capsys, tmp_path):
        self._check_usage_error(
            ["diagnose", *FAST, "--scenario", str(tmp_path / "nope.json"),
             "--start", "150", "--end", "160"],
            capsys, "cannot load scenario",
        )

    def test_characterize_rejects_bad_range(self, capsys):
        self._check_usage_error(
            ["characterize", *FAST, "--start", "220", "--end", "150"],
            capsys, "--end must be > --start",
        )

    def test_validate_rejects_zero_incidents(self, capsys):
        self._check_usage_error(
            ["validate", *FAST, "--incidents", "0"],
            capsys, "--incidents must be >= 1",
        )

    def test_simulate_rejects_nonpositive_days(self, capsys):
        self._check_usage_error(
            ["simulate", "--seed", "3", "--regions", "USA", "--days", "0",
             "--locations", "1"],
            capsys, "--days must be >= 1",
        )

    def test_simulate_rejects_nonpositive_locations(self, capsys):
        self._check_usage_error(
            ["simulate", "--seed", "3", "--regions", "USA", "--days", "1",
             "--locations", "0"],
            capsys, "--locations must be >= 1",
        )

    def test_unknown_region_exits_with_usage_code(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--regions", "Atlantis"])
        assert excinfo.value.code == 2


class TestChaosFlag:
    def test_diagnose_with_chaos_completes_and_counts_faults(
        self, tmp_path, capsys
    ):
        import json

        from repro.obs import PHASE_SPANS, validate_snapshot

        out_file = tmp_path / "metrics.json"
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "200",
             "--chaos", "1", "--metrics-json", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos: smoke fault plan enabled (seed 1)" in out
        assert "blame mix" in out
        snapshot = json.loads(out_file.read_text(encoding="utf-8"))
        validate_snapshot(snapshot, require_spans=PHASE_SPANS)
        counters = snapshot["counters"]
        assert any(name.startswith("chaos.") for name in counters)
        assert counters["pipeline.buckets"] == 50

    def test_chaos_is_deterministic_per_seed(self, tmp_path):
        import json

        snapshots = []
        for run in range(2):
            out_file = tmp_path / f"metrics-{run}.json"
            assert main(
                ["diagnose", *FAST, "--start", "150", "--end", "170",
                 "--chaos", "7", "--metrics-json", str(out_file)]
            ) == 0
            snapshots.append(
                json.loads(out_file.read_text(encoding="utf-8"))["counters"]
            )
        assert snapshots[0] == snapshots[1]


class TestMetricsJson:
    def test_diagnose_writes_valid_snapshot(self, tmp_path, capsys):
        import json

        from repro.obs import PHASE_SPANS, validate_snapshot

        out_file = tmp_path / "metrics.json"
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "200",
             "--metrics-json", str(out_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase seconds:" in out
        assert "metrics snapshot written" in out
        snapshot = json.loads(out_file.read_text(encoding="utf-8"))
        validate_snapshot(snapshot, require_spans=PHASE_SPANS)
        assert snapshot["counters"]["pipeline.buckets"] == 50
        assert snapshot["counters"]["pipeline.quartets"] > 0

    def test_diagnose_without_flag_records_nothing(self, capsys):
        code = main(["diagnose", *FAST, "--start", "150", "--end", "160"])
        assert code == 0
        assert "phase seconds" not in capsys.readouterr().out


class TestCheckpointFlags:
    """--checkpoint-dir / --resume / --kill-at: chaos kill exits 3, resume
    reproduces the straight-through report byte-for-byte, and bad resume
    targets exit 2 with a one-line error."""

    # Two simulated days so the run crosses the day-288 checkpoint.
    DAYS2 = ["--seed", "3", "--regions", "USA", "Europe", "--days", "2",
             "--locations", "1"]
    RANGE = ["--start", "240", "--end", "360"]

    def test_kill_then_resume_matches_straight_through(
        self, tmp_path, capsys
    ):
        straight = tmp_path / "straight.json"
        # The straight-through run also checkpoints: a store switches the
        # sequential pipeline to per-bucket RNG seeding, so both runs must
        # use the same seeding scheme to compare byte-for-byte.
        code = main(
            ["diagnose", *self.DAYS2, *self.RANGE,
             "--checkpoint-dir", str(tmp_path / "ckpt_a"),
             "--save-report", str(straight)]
        )
        assert code == 0
        ckpt = tmp_path / "ckpt_b"
        code = main(
            ["diagnose", *self.DAYS2, *self.RANGE,
             "--checkpoint-dir", str(ckpt), "--kill-at", "288"]
        )
        assert code == 3
        assert "chaos: chaos kill at bucket 288" in capsys.readouterr().err
        resumed = tmp_path / "resumed.json"
        code = main(
            ["diagnose", *self.DAYS2, *self.RANGE,
             "--resume", str(ckpt), "--save-report", str(resumed)]
        )
        assert code == 0
        assert "resuming from checkpoint" in capsys.readouterr().out
        assert resumed.read_text() == straight.read_text()

    def test_resume_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(
            ["diagnose", *FAST, "--start", "150", "--end", "160",
             "--resume", str(tmp_path / "nope")]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot resume: no checkpoint directory" in err

    def test_resume_empty_directory_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(
            ["diagnose", *FAST, "--start", "150", "--end", "160",
             "--resume", str(empty)]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot resume: no checkpoint found" in err

    def test_resume_corrupt_store_exits_2(self, tmp_path, capsys):
        broken = tmp_path / "broken"
        broken.mkdir()
        (broken / "state.db").write_text("not a sqlite database at all")
        assert main(
            ["diagnose", *FAST, "--start", "150", "--end", "160",
             "--resume", str(broken)]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot open checkpoint store" in err

    def test_conflicting_dirs_exit_2(self, tmp_path, capsys):
        assert main(
            ["diagnose", *FAST, "--start", "150", "--end", "160",
             "--checkpoint-dir", str(tmp_path / "a"),
             "--resume", str(tmp_path / "b")]
        ) == 2
        err = capsys.readouterr().err
        assert "--checkpoint-dir and --resume must name the same" in err

    def test_negative_kill_at_exits_2(self, capsys):
        assert main(
            ["diagnose", *FAST, "--start", "150", "--end", "160",
             "--kill-at", "-1"]
        ) == 2
        assert "--kill-at must be >= 0" in capsys.readouterr().err


class TestServeCommand:
    """The serve verb: run-to-horizon, kill→resume equivalence with the
    batch pipeline, and usage-error exit codes."""

    DAYS2 = ["--seed", "3", "--regions", "USA", "Europe", "--days", "2",
             "--locations", "1"]
    RANGE = ["--start", "240", "--end", "330"]

    def test_serve_runs_to_horizon(self, tmp_path, capsys):
        alerts = tmp_path / "alerts.jsonl"
        code = main(
            ["serve", *self.DAYS2, *self.RANGE, "--budget", "2",
             "--alerts-jsonl", str(alerts)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving on http://127.0.0.1:" in out
        assert "blame mix" in out
        assert "alerts streamed:" in out
        assert alerts.exists()

    def test_kill_then_resume_matches_straight_through(
        self, tmp_path, capsys
    ):
        import json

        straight = tmp_path / "straight.json"
        code = main(
            ["serve", *self.DAYS2, *self.RANGE,
             "--save-report", str(straight)]
        )
        assert code == 0
        ckpt = tmp_path / "ckpt"
        code = main(
            ["serve", *self.DAYS2, *self.RANGE,
             "--checkpoint-dir", str(ckpt),
             "--checkpoint-every", "48", "--kill-at", "300"]
        )
        assert code == 3
        assert "chaos:" in capsys.readouterr().err
        resumed = tmp_path / "resumed.json"
        code = main(
            ["serve", *self.DAYS2, *self.RANGE,
             "--resume", str(ckpt), "--checkpoint-every", "48",
             "--save-report", str(resumed)]
        )
        assert code == 0
        assert "resuming from checkpoint" in capsys.readouterr().out
        # Metrics snapshots carry wall-clock span timings; everything
        # else is byte-identical.
        straight_doc = json.loads(straight.read_text())
        resumed_doc = json.loads(resumed.read_text())
        straight_doc.pop("metrics")
        resumed_doc.pop("metrics")
        assert resumed_doc == straight_doc

    def test_signal_handlers_restored_after_run(self):
        """serve must not leak its SIGTERM/SIGINT handlers into the
        calling process — forked children (e.g. multiprocessing pool
        workers) would inherit a handler that swallows SIGTERM."""
        import signal

        before_term = signal.getsignal(signal.SIGTERM)
        before_int = signal.getsignal(signal.SIGINT)
        assert main(["serve", *FAST, "--start", "150", "--end", "153"]) == 0
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert signal.getsignal(signal.SIGINT) is before_int

    def test_bad_flag_values_exit_2(self, capsys):
        for extra, fragment in [
            (["--checkpoint-every", "0"], "--checkpoint-every must be >= 1"),
            (["--keep-checkpoints", "0"], "--keep-checkpoints must be >= 1"),
            (["--retention-days", "0"], "--retention-days must be >= 1"),
            (["--kill-at", "-1"], "--kill-at must be >= 0"),
        ]:
            assert main(
                ["serve", *FAST, "--start", "150", "--end", "160", *extra]
            ) == 2
            err = capsys.readouterr().err
            assert err.startswith("error:")
            assert fragment in err

    def test_retention_requires_checkpoint_dir(self, capsys):
        assert main(
            ["serve", *FAST, "--start", "150", "--end", "160",
             "--retention-days", "1"]
        ) == 2
        err = capsys.readouterr().err
        assert "--retention-days requires --checkpoint-dir" in err

    def test_conflicting_dirs_exit_2(self, tmp_path, capsys):
        assert main(
            ["serve", *FAST, "--start", "150", "--end", "160",
             "--checkpoint-dir", str(tmp_path / "a"),
             "--resume", str(tmp_path / "b")]
        ) == 2
        err = capsys.readouterr().err
        assert "--checkpoint-dir and --resume must name the same" in err

    def test_missing_source_jsonl_exits_2(self, tmp_path, capsys):
        assert main(
            ["serve", *FAST, "--start", "150", "--end", "160",
             "--source-jsonl", str(tmp_path / "nope.jsonl")]
        ) == 2
        assert "cannot load quartets" in capsys.readouterr().err


class TestWorkersFlag:
    def test_diagnose_with_workers(self, capsys):
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "200",
             "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "blame mix" in out
        assert "probes:" in out

    def test_workers_must_be_positive(self, capsys):
        for bad in ("0", "-3"):
            assert main(
                ["diagnose", *FAST, "--start", "150", "--end", "160",
                 "--workers", bad]
            ) == 2
            err = capsys.readouterr().err
            assert err.startswith("error:")
            assert "--workers must be >= 1" in err

    def test_workers_with_metrics_json(self, tmp_path, capsys):
        import json

        from repro.obs import validate_snapshot

        out_file = tmp_path / "metrics.json"
        code = main(
            ["diagnose", *FAST, "--start", "150", "--end", "200",
             "--workers", "1", "--metrics-json", str(out_file)]
        )
        assert code == 0
        assert "metrics snapshot written" in capsys.readouterr().out
        snapshot = json.loads(out_file.read_text(encoding="utf-8"))
        validate_snapshot(snapshot)
        assert "phase.learning" in snapshot["spans"]
        assert "phase.generation" in snapshot["spans"]
