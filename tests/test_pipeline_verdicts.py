"""Unit tests for verdict aggregation and the client-verify flow."""


from repro.core.background import BaselineStore, ReverseBaselineStore
from repro.core.localize import CulpritVerdict
from repro.core.pipeline import BlameItPipeline, LocalizedIssue
from repro.cloud.traceroute import TracerouteResult


def _item(key, asn, delta, match=True, category="middle"):
    verdict = (
        None
        if asn == "none"
        else CulpritVerdict(asn=asn, delta_ms=delta, paths_match=match, baseline_age=1)
    )
    return LocalizedIssue(
        issue_key=key,
        prefix24=1,
        probed_at=10,
        priority=1.0,
        verdict=verdict,
        category=category,
    )


class TestBestVerdicts:
    def test_largest_effective_delta_wins(self):
        items = [
            _item(("edge-A", (10,)), 10, 50.0, match=True),
            _item(("edge-A", (10,)), 11, 20.0, match=True),
        ]
        best = BlameItPipeline.best_verdicts_by_key(items)
        assert best[("edge-A", (10,))].asn == 10

    def test_mismatched_path_discounted(self):
        """A mismatched-baseline verdict needs a substantially larger
        delta to beat an aligned one (0.6 discount)."""
        items = [
            _item(("edge-A", (10,)), 10, 40.0, match=True),
            _item(("edge-A", (10,)), 11, 50.0, match=False),  # 50*0.6=30 < 40
        ]
        best = BlameItPipeline.best_verdicts_by_key(items)
        assert best[("edge-A", (10,))].asn == 10
        items[1] = _item(("edge-A", (10,)), 11, 80.0, match=False)  # 48 > 40
        best = BlameItPipeline.best_verdicts_by_key(items)
        assert best[("edge-A", (10,))].asn == 11

    def test_unnamed_verdicts_ignored(self):
        items = [
            _item(("edge-A", (10,)), "none", 0.0),
            _item(("edge-A", (10,)), 12, 9.0),
        ]
        best = BlameItPipeline.best_verdicts_by_key(items)
        assert best[("edge-A", (10,))].asn == 12

    def test_keys_independent(self):
        items = [
            _item(("edge-A", (10,)), 10, 50.0),
            _item(("edge-B", (11,)), 11, 5.0),
        ]
        best = BlameItPipeline.best_verdicts_by_key(items)
        assert best[("edge-A", (10,))].asn == 10
        assert best[("edge-B", (11,))].asn == 11

    def test_empty(self):
        assert BlameItPipeline.best_verdicts_by_key([]) == {}


def _trace(path, cumulative, loc="edge-A", prefix=1, time=0):
    return TracerouteResult(
        location_id=loc,
        prefix24=prefix,
        time=time,
        path=path,
        cumulative_ms=tuple(float(c) for c in cumulative),
    )


class TestReverseBaselineStore:
    def test_full_path_keying(self):
        """Two reverse paths sharing a middle must not collide."""
        store = ReverseBaselineStore()
        store.put(_trace((30, 10, 1), (5, 8, 9), prefix=100))
        store.put(_trace((31, 10, 1), (7, 10, 11), prefix=200))
        found = store.get("anything", 999, (30, 10, 1))
        assert found is not None
        assert found.path == (30, 10, 1)
        other = store.get("anything", 999, (31, 10, 1))
        assert other.path == (31, 10, 1)

    def test_location_agnostic(self):
        store = ReverseBaselineStore()
        store.put(_trace((30, 10, 1), (5, 8, 9), loc="edge-X"))
        assert store.get("edge-Y", 1, (30, 10, 1)) is not None

    def test_prefix_fallback(self):
        store = ReverseBaselineStore()
        store.put(_trace((30, 10, 1), (5, 8, 9), prefix=100))
        # Unknown path, known prefix → fall back.
        found = store.get("any", 100, (30, 11, 1))
        assert found is not None

    def test_before_filter(self):
        store = ReverseBaselineStore()
        store.put(_trace((30, 10, 1), (5, 8, 9), time=2))
        store.put(_trace((30, 10, 1), (5, 8, 9), time=9))
        assert store.get("any", 1, (30, 10, 1), before=9).time == 2

    def test_independent_from_forward_store(self):
        forward = BaselineStore()
        forward.put(_trace((1, 10, 30), (2, 4, 6)))
        reverse = ReverseBaselineStore()
        assert reverse.get("edge-A", 1, (1, 10, 30)) is None
