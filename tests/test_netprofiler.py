"""Tests for the NetProfiler-style baseline."""

import numpy as np
import pytest

from repro.baselines.netprofiler import LEVELS, NetProfilerDiagnosis
from repro.net.asn import middle_asns
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario


def _gate(quartets):
    """Apply the 10-sample quartet gate (same input BlameIt sees)."""
    return [q for q in quartets if q.n_samples >= 10]


def _bad_set(scenario, quartets):
    targets = scenario.world.targets
    return {
        q.prefix24
        for q in quartets
        if q.mean_rtt_ms >= targets.target_ms(q.region, q.mobile)
    }


@pytest.fixture(scope="module")
def diagnosis(small_world):
    return NetProfilerDiagnosis(small_world.population)


class TestNetProfiler:
    def test_client_fault_blamed_at_as_level(self, small_world, diagnosis):
        asn = small_world.population.asns[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.CLIENT, asn=asn),
            start=150,
            duration=10,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        quartets = _gate(scenario.generate_quartets(155, np.random.default_rng(0)))
        blamed = diagnosis.diagnose(quartets, _bad_set(scenario, quartets))
        # The faulty AS (or a sub-group of it) is blamed.
        keys = {(d.level, d.key) for d in blamed}
        client_groups = {
            ("as", asn),
            *{
                ("announcement", p.announcement)
                for p in small_world.population.in_as(asn)
            },
            *{("prefix24", p.prefix24) for p in small_world.population.in_as(asn)},
        }
        assert keys & client_groups

    def test_smallest_group_preferred(self, small_world, diagnosis):
        """A single-prefix fault is blamed on the prefix, not its AS."""
        client = small_world.population.prefixes[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.CLIENT,
                asn=client.asn,
                prefixes=frozenset({client.prefix24}),
            ),
            start=150,
            duration=10,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        quartets = _gate(scenario.generate_quartets(155, np.random.default_rng(1)))
        blamed = diagnosis.diagnose(quartets, _bad_set(scenario, quartets))
        as_level = [d for d in blamed if d.level == "as" and d.key == client.asn]
        assert not as_level, "one bad prefix must not taint the whole AS"

    def test_middle_fault_smears_over_client_attributes(self, small_world, diagnosis):
        """The structural weakness vs. BlameIt: a middle fault has no
        client-side attribute, so NetProfiler blames several client
        groups (or none) instead of the shared path."""
        slot = next(
            s
            for s in small_world.slots
            if middle_asns(small_world.mapper.path_for(s.location, s.client) or (0, 0))
        )
        culprit = middle_asns(
            small_world.mapper.path_for(slot.location, slot.client)
        )[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.MIDDLE, asn=culprit),
            start=150,
            duration=10,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        quartets = _gate(scenario.generate_quartets(155, np.random.default_rng(2)))
        blamed = diagnosis.diagnose(quartets, _bad_set(scenario, quartets))
        # Whatever it blames, no diagnosis can name the middle AS.
        assert all(d.key != culprit for d in blamed)

    def test_healthy_window_no_blame(self, small_world, diagnosis):
        scenario = Scenario(small_world, (), ())
        quartets = _gate(scenario.generate_quartets(155, np.random.default_rng(3)))
        blamed = diagnosis.diagnose(quartets, _bad_set(scenario, quartets))
        # At most stray congestion groups; no large-scale blame.
        assert len(blamed) <= 3

    def test_levels_order(self):
        assert LEVELS[0] == "prefix24"
        assert LEVELS[-1] == "location"

    def test_threshold_validation(self, small_world):
        with pytest.raises(ValueError):
            NetProfilerDiagnosis(small_world.population, bad_threshold=0.0)
