"""Tests for the active-only and Trinocular-style probing baselines."""

import numpy as np

from repro.baselines.active_only import ActiveOnlyMonitor
from repro.baselines.trinocular import TargetBelief, TrinocularMonitor
from repro.cloud.traceroute import TracerouteEngine, TracerouteView


class _SteppingOracle:
    """Healthy until ``fault_at``; then +delta on the first middle hop."""

    def __init__(self, fault_at=50, fault_until=10_000, delta=60.0):
        self.fault_at = fault_at
        self.fault_until = fault_until
        self.delta = delta

    def traceroute_view(self, location_id, prefix24, time):
        inflate = self.delta if self.fault_at <= time < self.fault_until else 0.0
        return TracerouteView(
            path=(1, 10, 30),
            cumulative_ms=(2.0, 10.0 + inflate, 20.0 + inflate),
        )


def _engine(oracle=None) -> TracerouteEngine:
    return TracerouteEngine(
        oracle or _SteppingOracle(), np.random.default_rng(0), hop_noise_ms=0.0
    )


class TestActiveOnlyMonitor:
    def test_probe_volume(self):
        monitor = ActiveOnlyMonitor(engine=_engine(), interval_buckets=2)
        monitor.register_target("edge-A", (10,), 1)
        monitor.register_target("edge-A", (11,), 2)
        monitor.run(0, 20)
        assert monitor.engine.probes_issued == 2 * 10  # 2 targets, every 2nd bucket
        assert monitor.probes_per_day() == 2 * 288 / 2

    def test_detects_and_localizes(self):
        monitor = ActiveOnlyMonitor(engine=_engine(), interval_buckets=2)
        monitor.register_target("edge-A", (10,), 1)
        issues = monitor.run(0, 80)
        assert issues
        first = issues[0]
        assert first.time >= 50
        assert first.verdict.asn == 10

    def test_quiet_world_no_detections(self):
        oracle = _SteppingOracle(fault_at=10**9)
        monitor = ActiveOnlyMonitor(engine=_engine(oracle), interval_buckets=2)
        monitor.register_target("edge-A", (10,), 1)
        assert monitor.run(0, 60) == []

    def test_register_idempotent(self):
        monitor = ActiveOnlyMonitor(engine=_engine())
        monitor.register_target("edge-A", (10,), 1)
        monitor.register_target("edge-A", (10,), 99)
        assert monitor.target_count == 1


class TestTrinocularMonitor:
    def test_backoff_reduces_probes(self):
        """A stable target must cost far fewer probes than always-on."""
        oracle = _SteppingOracle(fault_at=10**9)
        monitor = TrinocularMonitor(engine=_engine(oracle), min_interval=1, max_interval=32)
        monitor.register_target("edge-A", (10,), 1)
        monitor.run(0, 400)
        always_on = 400  # min_interval probing for the same span
        assert monitor.engine.probes_issued < always_on / 3

    def test_detects_degradation(self):
        monitor = TrinocularMonitor(engine=_engine(_SteppingOracle(fault_at=100)))
        monitor.register_target("edge-A", (10,), 1)
        changes = monitor.run(0, 300)
        degraded = [c for c in changes if c.belief is TargetBelief.DEGRADED]
        assert degraded
        assert degraded[0].time >= 100

    def test_recovery_flips_back(self):
        oracle = _SteppingOracle(fault_at=100, fault_until=200)
        monitor = TrinocularMonitor(engine=_engine(oracle))
        monitor.register_target("edge-A", (10,), 1)
        changes = monitor.run(0, 400)
        beliefs = [c.belief for c in changes]
        assert TargetBelief.DEGRADED in beliefs
        assert beliefs[-1] is TargetBelief.HEALTHY

    def test_confirmations_filter_blips(self):
        """A single contradicting probe must not flip belief."""

        class _BlipOracle:
            def traceroute_view(self, location_id, prefix24, time):
                inflate = 60.0 if time == 50 else 0.0
                return TracerouteView(
                    path=(1, 10, 30),
                    cumulative_ms=(2.0, 10.0 + inflate, 20.0 + inflate),
                )

        monitor = TrinocularMonitor(engine=_engine(_BlipOracle()), confirmations=2)
        monitor.register_target("edge-A", (10,), 1)
        changes = monitor.run(0, 120)
        assert all(c.belief is not TargetBelief.DEGRADED for c in changes)

    def test_probe_ordering_between_baselines(self):
        """Cost ordering: always-on > Trinocular (same world, same span)."""
        span = 400
        active = ActiveOnlyMonitor(
            engine=_engine(_SteppingOracle(fault_at=10**9)), interval_buckets=2
        )
        trinocular = TrinocularMonitor(
            engine=_engine(_SteppingOracle(fault_at=10**9))
        )
        for monitor in (active, trinocular):
            monitor.register_target("edge-A", (10,), 1)
            monitor.register_target("edge-A", (11,), 2)
        active.run(0, span)
        trinocular.run(0, span)
        assert trinocular.engine.probes_issued < active.engine.probes_issued
