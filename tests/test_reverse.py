"""Tests for the §5.1 reverse-traceroute extension."""

import numpy as np
import pytest

from repro.cloud.traceroute import TracerouteEngine, TracerouteResult
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.core.reverse import localize_bidirectional
from repro.net.asn import middle_asns
from repro.sim.faults import Direction, Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario


def _trace(cumulative, path, loc="edge-A", prefix=1, time=0):
    return TracerouteResult(
        location_id=loc,
        prefix24=prefix,
        time=time,
        path=path,
        cumulative_ms=tuple(float(x) for x in cumulative),
    )


class TestLocalizeBidirectional:
    FWD_PATH = (1, 10, 20, 30)
    REV_PATH = (30, 21, 11, 1)

    def test_forward_fault_stays_forward(self):
        """A genuine forward fault: forward names it; in the reverse view
        the inflation spills onto the terminal (cloud) hop, whose flat
        forward contribution refutes that hypothesis."""
        fwd_base = _trace((4, 6, 8, 9), self.FWD_PATH)
        fwd_cur = _trace((4, 6, 58, 59), self.FWD_PATH, time=5)  # AS20 +50
        rev_base = _trace((1, 3, 5, 9), self.REV_PATH)
        rev_cur = _trace((1, 3, 5, 59), self.REV_PATH, time=5)  # spill at AS1
        outcome = localize_bidirectional(fwd_base, fwd_cur, rev_base, rev_cur)
        assert outcome.asn == 20
        assert outcome.direction == "forward"
        assert outcome.reverse.asn == 1  # the refuted spillover hypothesis

    def test_reverse_fault_disambiguated(self):
        """A reverse-only fault: the forward view shows the inflation on
        the client hop (whose reply crosses the faulty AS); the client's
        flat reverse contribution refutes that, and the reverse
        measurement names the real culprit."""
        fwd_base = _trace((4, 6, 8, 9), self.FWD_PATH)
        fwd_cur = _trace((4, 6, 8, 59), self.FWD_PATH, time=5)  # spill at 30
        rev_base = _trace((1, 3, 5, 9), self.REV_PATH)
        rev_cur = _trace((1, 3, 55, 59), self.REV_PATH, time=5)  # AS11 +50
        outcome = localize_bidirectional(fwd_base, fwd_cur, rev_base, rev_cur)
        assert outcome.asn == 11
        assert outcome.direction == "reverse"
        # The forward-only verdict would have been wrong:
        assert outcome.forward.asn == 30

    def test_missing_reverse_falls_back(self):
        fwd_base = _trace((4, 6, 8, 9), self.FWD_PATH)
        fwd_cur = _trace((4, 6, 58, 59), self.FWD_PATH, time=5)
        outcome = localize_bidirectional(fwd_base, fwd_cur, None, None)
        assert outcome.asn == 20
        assert outcome.reverse is None

    def test_no_delta_anywhere(self):
        fwd_base = _trace((4, 6, 8, 9), self.FWD_PATH)
        fwd_cur = _trace((4, 6, 8, 9.5), self.FWD_PATH, time=5)
        rev_base = _trace((1, 3, 5, 9), self.REV_PATH)
        rev_cur = _trace((1, 3, 5, 9.5), self.REV_PATH, time=5)
        outcome = localize_bidirectional(fwd_base, fwd_cur, rev_base, rev_cur)
        assert outcome.asn is None


class TestScenarioReverse:
    def test_reverse_path_endpoints(self, small_scenario, small_world):
        for asn in small_world.population.asns:
            path = small_scenario.reverse_path(asn)
            assert path is not None
            assert path[0] == asn
            assert path[-1] == small_world.cloud_asn

    def test_reverse_fault_inflates_rtt(self, small_world):
        scenario = Scenario(small_world, (), ())
        slot = next(
            s
            for s in small_world.slots
            if len(scenario.reverse_middle(s.client.asn)) >= 1
        )
        culprit = scenario.reverse_middle(slot.client.asn)[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.MIDDLE, asn=culprit, direction=Direction.REVERSE
            ),
            start=100,
            duration=10,
            added_ms=50.0,
        )
        faulty = Scenario(small_world, (fault,), ())
        loc = slot.location.location_id
        prefix = slot.client.prefix24
        clean_rtt = scenario.true_rtt_ms(loc, prefix, 105)
        fault_rtt = faulty.true_rtt_ms(loc, prefix, 105)
        assert fault_rtt == pytest.approx(clean_rtt + 50.0)
        assert faulty.true_culprit(loc, prefix, 105) == (SegmentKind.MIDDLE, culprit)

    def test_forward_view_spillover_at_first_crossing_hop(self, small_world):
        """A reverse fault shows up in the forward view at the first hop
        whose *reply path* crosses the faulty AS — never earlier, always
        by the final hop."""
        scenario = Scenario(small_world, (), ())
        checked = 0
        for slot in small_world.slots:
            reverse_only = sorted(
                set(scenario.reverse_middle(slot.client.asn))
                - set(
                    middle_asns(
                        small_world.mapper.path_for(slot.location, slot.client)
                        or (0, 0)
                    )
                )
            )
            if not reverse_only:
                continue
            culprit = reverse_only[0]
            fault = Fault(
                fault_id=0,
                target=FaultTarget(
                    kind=SegmentKind.MIDDLE, asn=culprit, direction=Direction.REVERSE
                ),
                start=100,
                duration=10,
                added_ms=50.0,
            )
            faulty = Scenario(small_world, (fault,), ())
            loc = slot.location.location_id
            prefix = slot.client.prefix24
            clean = scenario.traceroute_view(loc, prefix, 105)
            view = faulty.traceroute_view(loc, prefix, 105)
            deltas = [
                f - c for f, c in zip(view.cumulative_ms, clean.cumulative_ms)
            ]
            # Cloud hop never inflated; the full inflation arrives once
            # and persists to the end-to-end measurement.
            assert deltas[0] == pytest.approx(0.0, abs=1e-9)
            assert deltas[-1] == pytest.approx(50.0)
            first = next(i for i, d in enumerate(deltas) if d > 1.0)
            # The inflation appears exactly where the hop's reply first
            # crosses the culprit.
            hop_asn = view.path[first]
            reply = faulty._return_set_to(hop_asn, small_world.cloud_asn)
            if first < len(view.path) - 1:
                assert culprit in reply
            checked += 1
            if checked >= 3:
                break
        assert checked > 0

    def test_reverse_view_names_the_right_hop(self, small_world):
        scenario = Scenario(small_world, (), ())
        slot = next(
            s
            for s in small_world.slots
            if len(scenario.reverse_middle(s.client.asn)) >= 1
        )
        culprit = scenario.reverse_middle(slot.client.asn)[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.MIDDLE, asn=culprit, direction=Direction.REVERSE
            ),
            start=100,
            duration=10,
            added_ms=50.0,
        )
        faulty = Scenario(small_world, (fault,), ())
        loc = slot.location.location_id
        prefix = slot.client.prefix24
        clean = scenario.reverse_traceroute_view(loc, prefix, 105)
        view = faulty.reverse_traceroute_view(loc, prefix, 105)
        position = view.path.index(culprit)
        delta_at = view.cumulative_ms[position] - clean.cumulative_ms[position]
        delta_before = (
            view.cumulative_ms[position - 1] - clean.cumulative_ms[position - 1]
        )
        assert delta_at == pytest.approx(50.0)
        assert delta_before == pytest.approx(0.0, abs=1e-9)


class TestEngineReverse:
    def test_issue_reverse_counts_separately(self, small_scenario):
        engine = TracerouteEngine(small_scenario, np.random.default_rng(0))
        slot = small_scenario.world.slots[0]
        result = engine.issue_reverse(
            slot.location.location_id, slot.client.prefix24, 100
        )
        assert result is not None
        assert result.path[0] == slot.client.asn
        assert result.path[-1] == small_scenario.world.cloud_asn
        assert engine.reverse_probes_issued == 1
        assert engine.probes_issued == 0

    def test_plain_oracle_rejected(self):
        class _NoReverse:
            def traceroute_view(self, location_id, prefix24, time):
                return None

        engine = TracerouteEngine(_NoReverse(), np.random.default_rng(0))
        with pytest.raises(TypeError):
            engine.issue_reverse("edge-A", 1, 0)


class TestPipelineReverse:
    def test_reverse_fault_localized_with_extension(self, small_world):
        """End to end: a reverse-only fault is correctly localized with
        the extension on, while the forward-only run cannot see it on the
        affected group's forward path (it blames a forward hop there)."""
        probe = Scenario(small_world, (), ())
        slot = next(
            s
            for s in small_world.slots
            if (
                set(probe.reverse_middle(s.client.asn))
                - set(
                    middle_asns(
                        small_world.mapper.path_for(s.location, s.client) or (0, 0)
                    )
                )
            )
        )
        forward_path = small_world.mapper.path_for(slot.location, slot.client)
        forward_middle = middle_asns(forward_path)
        reverse_only = sorted(
            set(probe.reverse_middle(slot.client.asn)) - set(forward_middle)
        )[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.MIDDLE, asn=reverse_only, direction=Direction.REVERSE
            ),
            start=170,
            duration=16,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        affected_key = (slot.location.location_id, forward_middle)

        def run(use_reverse: bool):
            config = BlameItConfig(
                history_days=1, use_reverse_traceroutes=use_reverse
            )
            pipeline = BlameItPipeline(scenario, config=config)
            pipeline.warmup(0, 144, stride=3)
            report = pipeline.run(150, 200)
            return {
                item.issue_key: item.verdict.asn
                for item in report.localized
                if item.verdict and item.verdict.asn
            }

        with_extension = run(True)
        assert reverse_only in with_extension.values()
        without_extension = run(False)
        # On the affected forward group, the forward-only verdict cannot
        # name the reverse-only AS — it is not on that forward path.
        if affected_key in without_extension:
            assert without_extension[affected_key] != reverse_only
            # The misattribution lands somewhere on the forward path
            # (often the client hop, whose reply crosses the culprit).
            assert without_extension[affected_key] in forward_path
