"""Shard-result transport and persistent-pool properties.

Unit level: shared-memory and pickle payloads round-trip a shard's
summaries bit-for-bit, allocation failures downgrade to accounted
pickle fallbacks, and segment lifetime (lease refcount, discard,
abnormal exit) never leaks ``/dev/shm`` entries.

Pipeline level: both transports produce byte-identical reports against
the sequential pipeline with real worker processes; one pool serves a
whole multi-day run and a daemon's step cadence; a worker crash costs
one shard respawn, not the pool.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.chaos import ChaosKill, FaultPlan
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.core.thresholds import ExpectedRTTLearner
from repro.io import report_to_dict
from repro.obs import MetricsRegistry, validate_snapshot
from repro.perf import transport
from repro.perf.sharded import ShardedPipeline, _ShardRunner
from repro.perf.transport import (
    PicklePayload,
    ShmPayload,
    decode_result,
    discard_payload,
    encode_result,
    resolve_mode,
    shm_available,
)
from repro.serve import BlameItDaemon, ScenarioSource
from repro.sim.scenario import Scenario
from repro.store import CheckpointStore

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="platform lacks multiprocessing.shared_memory"
)


def _config(**overrides) -> BlameItConfig:
    return BlameItConfig(
        history_days=1, background_interval_buckets=36, **overrides
    )


def _digest(report) -> str:
    data = report_to_dict(report)
    data.pop("metrics", None)
    return json.dumps(data, sort_keys=True)


def _shm_entries() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platform
        return set()


@pytest.fixture(scope="module")
def trained(small_world):
    scenario = Scenario.from_world(small_world)
    learner = ExpectedRTTLearner(history_days=1)
    trainer = BlameItPipeline(scenario, config=_config(), learner=learner)
    trainer.warmup(0, 96, stride=4)
    return scenario, learner.table()


@pytest.fixture(scope="module")
def shard_output(trained):
    """One real shard's summaries + snapshot (learn columns included)."""
    scenario, table = trained
    runner = _ShardRunner(
        scenario,
        _config(vectorized_passive=True),
        table,
        seed=11,
        metrics_enabled=True,
        want_learn=True,
    )
    summaries, snapshot = runner.run_shard((100, 113))
    assert any(s.n_quartets for s in summaries)
    return summaries, snapshot


def _arrays_equal(got, expected) -> bool:
    got, expected = np.asarray(got), np.asarray(expected)
    equal_nan = np.issubdtype(expected.dtype, np.floating)
    return np.array_equal(got, expected, equal_nan=equal_nan)


def _assert_batches_equal(got, expected) -> None:
    for name in transport._BATCH_ARRAYS:
        assert _arrays_equal(getattr(got, name), getattr(expected, name))
    assert got.locations == expected.locations
    assert got.middles == expected.middles
    assert got.regions == expected.regions


def _assert_summaries_equal(got_list, expected_list) -> None:
    assert len(got_list) == len(expected_list)
    for got, expected in zip(got_list, expected_list):
        assert got.time == expected.time
        assert got.n_quartets == expected.n_quartets
        assert (got.blames is None) == (expected.blames is None)
        if expected.blames is not None:
            _assert_batches_equal(got.blames.batch, expected.blames.batch)
            assert _arrays_equal(got.blames.code, expected.blames.code)
            assert _arrays_equal(
                got.blames.cloud_fraction, expected.blames.cloud_fraction
            )
            assert _arrays_equal(
                got.blames.middle_fraction, expected.blames.middle_fraction
            )
        assert _arrays_equal(got.pair_codes, expected.pair_codes)
        assert _arrays_equal(got.pair_users, expected.pair_users)
        assert _arrays_equal(got.new_mask, expected.new_mask)
        assert _arrays_equal(got.new_prefixes, expected.new_prefixes)
        assert (got.learn is None) == (expected.learn is None)
        if expected.learn is not None:
            for col_got, col_exp in zip(got.learn, expected.learn):
                assert _arrays_equal(col_got, col_exp)
        assert (got.deferred_batch is None) == (expected.deferred_batch is None)
        if expected.deferred_batch is not None:
            _assert_batches_equal(got.deferred_batch, expected.deferred_batch)


class TestRoundTrip:
    @needs_shm
    def test_shm_round_trip(self, shard_output):
        summaries, snapshot = shard_output
        payload = encode_result(summaries, snapshot, "shm")
        assert isinstance(payload, ShmPayload)
        assert payload.name in _shm_entries()
        counts: dict[str, int] = {}
        decoded, got_snapshot, lease = decode_result(
            payload, lambda name, n: counts.__setitem__(
                name, counts.get(name, 0) + n
            )
        )
        assert counts == {"shm_bytes": payload.nbytes, "shm_segments": 1}
        assert counts["shm_bytes"] > 0
        assert got_snapshot == snapshot
        _assert_summaries_equal(decoded, summaries)
        assert lease is not None and not lease.released
        lease.release()
        assert lease.released
        assert payload.name not in _shm_entries()

    def test_pickle_round_trip(self, shard_output):
        summaries, snapshot = shard_output
        payload = encode_result(summaries, snapshot, "pickle")
        assert isinstance(payload, PicklePayload) and not payload.fallback
        counts: dict[str, int] = {}
        decoded, got_snapshot, lease = decode_result(
            payload, lambda name, n: counts.__setitem__(
                name, counts.get(name, 0) + n
            )
        )
        assert counts == {"pickle_bytes": len(payload.data)}
        assert got_snapshot == snapshot
        assert lease is None
        _assert_summaries_equal(decoded, summaries)

    @needs_shm
    def test_failed_allocation_falls_back_to_pickle(
        self, shard_output, monkeypatch
    ):
        summaries, snapshot = shard_output

        def refuse(*args, **kwargs):
            raise OSError("no space on /dev/shm")

        monkeypatch.setattr(
            transport.shared_memory, "SharedMemory", refuse
        )
        payload = encode_result(summaries, snapshot, "shm")
        assert isinstance(payload, PicklePayload) and payload.fallback
        monkeypatch.undo()
        counts: dict[str, int] = {}
        decoded, _, _ = decode_result(
            payload, lambda name, n: counts.__setitem__(
                name, counts.get(name, 0) + n
            )
        )
        assert counts["fallbacks"] == 1
        assert counts["pickle_bytes"] == len(payload.data)
        _assert_summaries_equal(decoded, summaries)

    @needs_shm
    def test_discard_payload_reclaims_segment(self, shard_output):
        summaries, snapshot = shard_output
        payload = encode_result(summaries, snapshot, "shm")
        assert payload.name in _shm_entries()
        discard_payload(payload)
        assert payload.name not in _shm_entries()
        discard_payload(payload)  # idempotent on a reclaimed segment

    @needs_shm
    def test_lease_refcount_pins_segment(self, shard_output):
        summaries, snapshot = shard_output
        payload = encode_result(summaries, snapshot, "shm")
        _, _, lease = decode_result(payload, lambda name, n: None)
        lease.retain()
        lease.release()  # one reference still held
        assert not lease.released
        assert payload.name in _shm_entries()
        lease.release()
        assert lease.released
        assert payload.name not in _shm_entries()


class TestResolveMode:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(transport.ENV_VAR, "shm")
        assert resolve_mode("pickle") == "pickle"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(transport.ENV_VAR, "pickle")
        assert resolve_mode(None) == "pickle"

    def test_defaults_to_shm_when_available(self, monkeypatch):
        monkeypatch.delenv(transport.ENV_VAR, raising=False)
        expected = "shm" if shm_available() else "pickle"
        assert resolve_mode(None) == expected

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="transport must be one of"):
            resolve_mode("carrier-pigeon")


class TestPipelineTransport:
    """Real worker processes, both transports, byte-identity plus the
    accounting each mode must leave behind."""

    def _sequential(self, trained) -> str:
        scenario, table = trained
        return _digest(
            BlameItPipeline(
                scenario,
                config=_config(),
                fixed_table=table,
                seed=11,
                rng_per_bucket=True,
            ).run(100, 160)
        )

    def _sharded(self, trained, mode, metrics=None, chaos=None):
        scenario, table = trained
        pipeline = ShardedPipeline(
            scenario,
            config=_config(vectorized_passive=True),
            fixed_table=table,
            seed=11,
            n_workers=2,
            buckets_per_shard=13,
            transport=mode,
            metrics=metrics,
            chaos=chaos,
        )
        try:
            report = pipeline.run(100, 160)
        finally:
            pipeline.close()
        return report, pipeline

    @needs_shm
    def test_shm_workers_byte_identical_and_accounted(self, trained):
        metrics = MetricsRegistry()
        report, pipeline = self._sharded(trained, "shm", metrics=metrics)
        assert _digest(report) == self._sequential(trained)
        stats = pipeline.transport_stats
        assert stats["shm_bytes"] > 0
        assert stats["shm_segments"] == 5  # ceil(60 / 13) shards
        assert stats["pickle_bytes"] == 0
        assert stats["fallbacks"] == 0
        counters = report.metrics["counters"]
        assert counters["transport.shm_bytes"] == stats["shm_bytes"]
        assert counters["transport.shm_segments"] == stats["shm_segments"]
        validate_snapshot(report.metrics)
        assert pipeline.stage_seconds["fold"] > 0.0

    def test_pickle_workers_byte_identical_and_accounted(self, trained):
        report, pipeline = self._sharded(trained, "pickle")
        assert _digest(report) == self._sequential(trained)
        stats = pipeline.transport_stats
        assert stats["pickle_bytes"] > 0
        assert stats["shm_bytes"] == 0
        assert stats["shm_segments"] == 0

    def test_worker_crash_respawns_one_shard_not_the_pool(self, trained):
        """With the persistent pool, an injected worker crash is
        recovered by resubmitting the one failed shard; the pool object
        survives (no second pool is built) and the report still matches
        the sequential run."""
        plan = FaultPlan(seed=5, shard_crash_rate=1.0, shard_crash_max=1)
        metrics = MetricsRegistry()
        report, pipeline = self._sharded(trained, None, metrics=metrics,
                                         chaos=plan)
        sequential = _digest(
            BlameItPipeline(
                trained[0],
                config=_config(),
                fixed_table=trained[1],
                seed=11,
                rng_per_bucket=True,
                chaos=plan,
            ).run(100, 160)
        )
        assert _digest(report) == sequential
        assert pipeline.pools_created == 1
        counters = report.metrics["counters"]
        n_shards = 5  # ceil(60 / 13)
        assert counters["chaos.shard.crashed"] == n_shards
        assert counters["retry.shard.attempts"] == n_shards
        assert counters["retry.shard.recovered"] == n_shards
        assert counters["shard.runs"] == 2 * n_shards
        validate_snapshot(report.metrics)


class TestPersistentPool:
    def test_one_pool_serves_a_multi_day_run(self, multi_day_world):
        """Per-day segments reuse the pool; the old code built (and
        leaked) one pool per ``_map_shards`` call."""
        scenario = Scenario.from_world(multi_day_world)
        pipeline = ShardedPipeline(
            scenario,
            config=_config(vectorized_passive=True),
            seed=11,
            n_workers=2,
            buckets_per_shard=13,
        )
        try:
            pipeline.warmup(0, 96, stride=4)
            pipeline.run(100, 700)
            assert pipeline.pools_created == 1
        finally:
            pipeline.close()

    def test_one_pool_serves_daemon_steps(self, multi_day_world):
        """The daemon's bucket-at-a-time cadence must not respawn
        workers per step, and the sharded driver's report must match a
        sequential daemon's byte-for-byte."""
        start, end = 96, 320  # crosses the day-1 table refresh at 288

        def run(sharded: bool):
            scenario = Scenario.from_world(multi_day_world)
            if sharded:
                pipeline = ShardedPipeline(
                    scenario,
                    config=_config(vectorized_passive=True),
                    seed=11,
                    n_workers=2,
                )
            else:
                pipeline = BlameItPipeline(
                    scenario,
                    config=_config(),
                    seed=11,
                    rng_per_bucket=True,
                )
            pipeline.warmup(0, 96, stride=4)
            daemon = BlameItDaemon(
                pipeline, start, end, source=ScenarioSource()
            )
            try:
                return daemon.run(), pipeline
            finally:
                if sharded:
                    pipeline.close()

        got, sharded_pipeline = run(sharded=True)
        expected, _ = run(sharded=False)
        assert _digest(got) == _digest(expected)
        assert sharded_pipeline.pools_created == 1

    def test_no_shm_leak_after_chaos_kill(self, multi_day_world, tmp_path):
        """An aborted run (chaos kill at the day boundary) must leave
        ``/dev/shm`` exactly as it found it once the pipeline is
        closed — outstanding window leases are force-destroyed."""
        before = _shm_entries()
        scenario = Scenario.from_world(multi_day_world)
        store = CheckpointStore(tmp_path)
        pipeline = ShardedPipeline(
            scenario,
            config=_config(vectorized_passive=True),
            seed=11,
            n_workers=2,
            buckets_per_shard=13,
            store=store,
            chaos=FaultPlan(seed=1, kill_at_bucket=288),
        )
        try:
            pipeline.warmup(0, 96, stride=4)
            with pytest.raises(ChaosKill):
                pipeline.run(100, 700)
        finally:
            pipeline.close()
            store.close()
        leaked = {
            entry for entry in _shm_entries() - before
            if entry.startswith("psm_")
        }
        assert leaked == set()
