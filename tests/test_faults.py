"""Tests for repro.sim.faults: fault targeting, durations, the injector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import (
    Fault,
    FaultInjector,
    FaultRates,
    FaultTarget,
    SegmentKind,
    sample_duration,
    sample_magnitude_ms,
)


def _fault(target, start=10, duration=5, added=50.0, fid=0) -> Fault:
    return Fault(fault_id=fid, target=target, start=start, duration=duration, added_ms=added)


class TestFaultTarget:
    def test_cloud_needs_location(self):
        with pytest.raises(ValueError):
            FaultTarget(kind=SegmentKind.CLOUD)

    def test_middle_needs_asn(self):
        with pytest.raises(ValueError):
            FaultTarget(kind=SegmentKind.MIDDLE)

    def test_client_needs_asn(self):
        with pytest.raises(ValueError):
            FaultTarget(kind=SegmentKind.CLIENT)


class TestFaultApplicability:
    PATH = (1, 10, 20, 30)

    def test_activity_window(self):
        fault = _fault(FaultTarget(kind=SegmentKind.CLOUD, location_id="edge-X"))
        assert not fault.is_active(9)
        assert fault.is_active(10)
        assert fault.is_active(14)
        assert not fault.is_active(15)
        assert fault.end == 15

    def test_cloud_scope(self):
        fault = _fault(FaultTarget(kind=SegmentKind.CLOUD, location_id="edge-X"))
        assert fault.applies_to("edge-X", self.PATH, 5, 30)
        assert not fault.applies_to("edge-Y", self.PATH, 5, 30)

    def test_middle_scope_global(self):
        fault = _fault(FaultTarget(kind=SegmentKind.MIDDLE, asn=10))
        assert fault.applies_to("edge-X", self.PATH, 5, 30)
        assert not fault.applies_to("edge-X", (1, 11, 30), 5, 30)

    def test_middle_endpoints_excluded(self):
        """A 'middle' fault on the client AS's number must not match the
        client hop."""
        fault = _fault(FaultTarget(kind=SegmentKind.MIDDLE, asn=30))
        assert not fault.applies_to("edge-X", self.PATH, 5, 30)

    def test_middle_path_scoped(self):
        fault = _fault(
            FaultTarget(kind=SegmentKind.MIDDLE, asn=10, path_scope=(10, 20))
        )
        assert fault.applies_to("edge-X", self.PATH, 5, 30)
        assert not fault.applies_to("edge-X", (1, 10, 21, 30), 5, 30)

    def test_client_scope(self):
        fault = _fault(FaultTarget(kind=SegmentKind.CLIENT, asn=30))
        assert fault.applies_to("edge-X", self.PATH, 5, 30)
        assert not fault.applies_to("edge-X", self.PATH, 5, 31)

    def test_client_prefix_scoped(self):
        fault = _fault(
            FaultTarget(kind=SegmentKind.CLIENT, asn=30, prefixes=frozenset({5}))
        )
        assert fault.applies_to("edge-X", self.PATH, 5, 30)
        assert not fault.applies_to("edge-X", self.PATH, 6, 30)

    def test_validation(self):
        target = FaultTarget(kind=SegmentKind.CLIENT, asn=30)
        with pytest.raises(ValueError):
            Fault(0, target, 0, 0, 50.0)
        with pytest.raises(ValueError):
            Fault(0, target, 0, 1, 0.0)
        with pytest.raises(ValueError):
            FaultTarget(
                kind=SegmentKind.CLOUD, location_id="edge-X", affected_fraction=0.0
            )

    def test_partial_cloud_fault_hits_stable_subset(self):
        target = FaultTarget(
            kind=SegmentKind.CLOUD, location_id="edge-X", affected_fraction=0.5
        )
        fault = _fault(target)
        hits = [
            fault.applies_to("edge-X", self.PATH, prefix, 30)
            for prefix in range(2000)
        ]
        fraction = sum(hits) / len(hits)
        assert 0.4 < fraction < 0.6  # approximately the requested share
        # Stable: the same prefixes hit every time.
        assert hits == [
            fault.applies_to("edge-X", self.PATH, prefix, 30)
            for prefix in range(2000)
        ]

    def test_full_fraction_hits_everyone(self):
        target = FaultTarget(kind=SegmentKind.CLOUD, location_id="edge-X")
        fault = _fault(target)
        assert all(
            fault.applies_to("edge-X", self.PATH, prefix, 30)
            for prefix in range(100)
        )


class TestDurationDistribution:
    def test_long_tailed_mixture(self):
        """Figure 4a: ~60 % of faults last one bucket, ~8 % exceed 2h."""
        rng = np.random.default_rng(0)
        durations = [sample_duration(rng) for _ in range(20000)]
        fleeting = sum(1 for d in durations if d == 1) / len(durations)
        long_lived = sum(1 for d in durations if d > 24) / len(durations)
        assert 0.55 < fleeting < 0.65
        assert 0.04 < long_lived < 0.13

    def test_minimum_one_bucket(self):
        rng = np.random.default_rng(1)
        assert all(sample_duration(rng) >= 1 for _ in range(1000))

    def test_magnitudes_in_range(self):
        rng = np.random.default_rng(2)
        for _ in range(100):
            assert 25.0 <= sample_magnitude_ms(rng) <= 120.0


class TestFaultInjector:
    def _injector(self, rates=None):
        return FaultInjector(
            rates=rates or FaultRates(),
            location_ids=("edge-A", "edge-B"),
            middle_asns_pool=(10, 11),
            client_asns=(30, 31, 32),
        )

    def test_generation_within_horizon(self):
        faults = self._injector().generate(288 * 7, np.random.default_rng(0))
        assert faults
        for fault in faults:
            assert 0 <= fault.start < 288 * 7

    def test_sorted_by_start(self):
        faults = self._injector().generate(288 * 7, np.random.default_rng(0))
        starts = [f.start for f in faults]
        assert starts == sorted(starts)

    def test_rate_scaling(self):
        rng = np.random.default_rng(3)
        rates = FaultRates(cloud_per_day=0.0, middle_per_day=0.0, client_per_day=50.0)
        faults = self._injector(rates).generate(288 * 4, rng)
        kinds = {f.target.kind for f in faults}
        assert kinds == {SegmentKind.CLIENT}
        assert 120 < len(faults) < 280  # Poisson(200)

    def test_unique_ids(self):
        faults = self._injector().generate(288 * 7, np.random.default_rng(0))
        ids = [f.fault_id for f in faults]
        assert len(ids) == len(set(ids))

    def test_empty_pools_skipped(self):
        injector = FaultInjector(
            rates=FaultRates(),
            location_ids=(),
            middle_asns_pool=(),
            client_asns=(30,),
        )
        faults = injector.generate(288, np.random.default_rng(0))
        assert all(f.target.kind is SegmentKind.CLIENT for f in faults)

    @settings(max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_targets_come_from_pools(self, seed):
        injector = self._injector()
        for fault in injector.generate(288, np.random.default_rng(seed)):
            target = fault.target
            if target.kind is SegmentKind.CLOUD:
                assert target.location_id in ("edge-A", "edge-B")
            elif target.kind is SegmentKind.MIDDLE:
                assert target.asn in (10, 11)
            else:
                assert target.asn in (30, 31, 32)
