"""Tests for repro.cloud.anycast: serving assignment and egress selection."""

import numpy as np
import pytest

from repro.cloud.anycast import AnycastMapper
from repro.cloud.clients import PopulationParams, generate_population
from repro.cloud.locations import make_locations
from repro.net.geo import Region, metro_distance_km
from repro.net.routing import RouteComputer


@pytest.fixture(scope="module")
def setup(small_topology):
    rng = np.random.default_rng(21)
    locations = make_locations((Region.USA, Region.EUROPE, Region.INDIA), 2, rng)
    population = generate_population(
        small_topology.topology, PopulationParams(), np.random.default_rng(9)
    )
    computer = RouteComputer(small_topology.topology, small_topology.cloud_asn)
    mapper = AnycastMapper(locations, small_topology.topology, computer)
    return locations, population, mapper


class TestAssignment:
    def test_primary_is_nearest(self, setup):
        locations, population, mapper = setup
        rng = np.random.default_rng(0)
        for client in list(population)[:20]:
            assignment = mapper.assignment_for(client, rng)
            best = min(
                metro_distance_km(l.metro, client.metro) for l in locations
            )
            actual = metro_distance_km(assignment.primary.metro, client.metro)
            assert actual == pytest.approx(best)

    def test_secondary_distinct_from_primary(self, setup):
        _, population, mapper = setup
        rng = np.random.default_rng(1)
        saw_secondary = False
        for client in population:
            assignment = mapper.assignment_for(client, rng)
            if assignment.secondary is not None:
                saw_secondary = True
                assert assignment.secondary != assignment.primary
                assert 0 < assignment.secondary_share < 1
        assert saw_secondary

    def test_secondary_fraction_zero_disables(self, setup, small_topology):
        locations, population, _ = setup
        computer = RouteComputer(small_topology.topology, small_topology.cloud_asn)
        mapper = AnycastMapper(
            locations, small_topology.topology, computer, secondary_fraction=0.0
        )
        rng = np.random.default_rng(2)
        for client in list(population)[:20]:
            assert mapper.assignment_for(client, rng).secondary is None


class TestEgressSelection:
    def test_path_endpoints(self, setup):
        locations, population, mapper = setup
        for client in list(population)[:20]:
            path = mapper.path_for(locations[0], client)
            assert path is not None
            assert path[-1] == client.asn

    def test_path_cached(self, setup):
        locations, population, mapper = setup
        client = population.prefixes[0]
        assert mapper.path_for(locations[0], client) is mapper.path_for(
            locations[0], client
        )

    def test_alternate_differs_from_primary(self, setup):
        locations, population, mapper = setup
        found_alternate = False
        for client in population:
            primary = mapper.path_for(locations[0], client)
            alternate = mapper.alternate_path_for(locations[0], client)
            if alternate is not None:
                found_alternate = True
                assert alternate != primary
        assert found_alternate

    def test_same_as_prefixes_share_paths(self, setup):
        """Prefixes of one AS with the same announcement scope must ride
        the same path from a given location."""
        locations, population, mapper = setup
        by_scope: dict = {}
        for client in population:
            key = (client.asn, client.announce_to)
            path = mapper.path_for(locations[0], client)
            assert by_scope.setdefault(key, path) == path

    def test_invalidate_clears_cache(self, setup):
        locations, population, mapper = setup
        client = population.prefixes[0]
        before = mapper.path_for(locations[0], client)
        mapper.invalidate()
        after = mapper.path_for(locations[0], client)
        assert before == after  # same topology, same answer, fresh cache
