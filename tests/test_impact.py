"""Tests for repro.core.impact: client-time product and rankings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.impact import (
    ImpactRecord,
    client_time_product,
    coverage_at_fraction,
    cumulative_impact_curve,
    measured_impact,
    rank_by_impact,
    rank_by_prefix_count,
)


def _record(key, prefixes, clients, duration) -> ImpactRecord:
    return ImpactRecord(
        key=key,
        affected_prefixes=prefixes,
        affected_clients=clients,
        duration_buckets=duration,
    )


class TestClientTimeProduct:
    def test_product(self):
        assert client_time_product(6, 100) == 600

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            client_time_product(-1, 5)
        with pytest.raises(ValueError):
            client_time_product(1, -5)

    def test_measured_impact(self):
        duration, impact = measured_impact({0: 10, 1: 20, 5: 30})
        assert duration == 3
        assert impact == 60.0


class TestFigure5Example:
    """The paper's worked example: two orderings disagree.

    Tuple #1: three /24s of 10 users, short episodes (client-time 350).
    Tuple #2: one... (paper: two /24s of 100 users, 30+20 min → but shown
    as prefix-count 1 vs 3; we encode the paper's final numbers).
    """

    def _records(self):
        tuple1 = _record("t1", prefixes=3, clients=35, duration=10)  # 350
        tuple2 = _record("t2", prefixes=1, clients=200, duration=10)  # 2000
        return tuple1, tuple2

    def test_prefix_ranking_prefers_tuple1(self):
        tuple1, tuple2 = self._records()
        assert rank_by_prefix_count([tuple2, tuple1])[0] is tuple1

    def test_impact_ranking_prefers_tuple2(self):
        tuple1, tuple2 = self._records()
        assert rank_by_impact([tuple1, tuple2])[0] is tuple2
        assert tuple2.impact == pytest.approx(2000.0)
        assert tuple1.impact == pytest.approx(350.0)


class TestCumulativeCurve:
    def test_monotone_and_normalized(self):
        records = [_record(i, 1, 10 * (i + 1), 2) for i in range(5)]
        curve = cumulative_impact_curve(rank_by_impact(records))
        assert curve[-1] == pytest.approx(1.0)
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_impact_ranking_dominates_prefix_ranking(self):
        """For skewed impact, the impact-ranked curve reaches coverage
        with fewer records (the 3× gap of Figure 4b)."""
        records = [
            _record("small-many", prefixes=50, clients=10, duration=1),
            _record("big-few", prefixes=1, clients=5000, duration=20),
            _record("mid", prefixes=10, clients=100, duration=3),
        ]
        by_impact = cumulative_impact_curve(rank_by_impact(records))
        by_prefix = cumulative_impact_curve(rank_by_prefix_count(records))
        assert coverage_at_fraction(by_impact, 0.8) <= coverage_at_fraction(
            by_prefix, 0.8
        )

    def test_coverage_bounds(self):
        curve = [0.5, 0.9, 1.0]
        assert coverage_at_fraction(curve, 0.5) == pytest.approx(1 / 3)
        assert coverage_at_fraction(curve, 0.95) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            coverage_at_fraction(curve, 0.0)
        with pytest.raises(ValueError):
            coverage_at_fraction([], 0.5)

    def test_zero_impact_rejected(self):
        with pytest.raises(ValueError):
            cumulative_impact_curve([_record("x", 1, 0, 5)])
        with pytest.raises(ValueError):
            cumulative_impact_curve([])

    @given(
        clients=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=30),
    )
    def test_curve_properties(self, clients):
        records = [_record(i, 1, c, 3) for i, c in enumerate(clients)]
        curve = cumulative_impact_curve(rank_by_impact(records))
        assert len(curve) == len(records)
        assert curve[-1] == pytest.approx(1.0)
        assert all(0.0 < v <= 1.0 + 1e-12 for v in curve)
        # Ranked-by-impact curve is concave-ish: first record covers the
        # largest single share.
        assert curve[0] == pytest.approx(max(c for c in clients) * 3 / (sum(clients) * 3))
