"""Tests for repro.serve: the streaming daemon, sources, HTTP surface.

The headline property extends DESIGN.md §6 to service mode: a daemon
fed bucket-by-bucket — from the scenario or from a JSONL file — produces
a report byte-identical to the batch ``run()`` over the same window,
including across kill→resume and with the bounded-memory retention
window active.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.chaos import ChaosKill
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.io import report_to_dict
from repro.net.asn import middle_asns
from repro.obs import validate_snapshot
from repro.perf.batch import BatchQuartetGenerator
from repro.serve import (
    BlameItDaemon,
    JsonlSource,
    ScenarioSource,
    StatusServer,
    quartet_from_row,
    quartet_to_row,
    write_quartets_jsonl,
)
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario
from repro.store import CheckpointStore

START, END = 96, 400
SEED = 11


def _digest(report) -> str:
    data = report_to_dict(report)
    data.pop("metrics", None)
    return json.dumps(data, sort_keys=True)


def _faulty_scenario(world) -> Scenario:
    """A scenario with cloud and middle faults inside [START, END)."""
    location = world.locations[0].location_id
    slot = next(
        s
        for s in world.slots
        if len(middle_asns(world.mapper.path_for(s.location, s.client) or (0, 0)))
        >= 1
    )
    culprit = middle_asns(world.mapper.path_for(slot.location, slot.client))[0]
    faults = (
        Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.CLOUD, location_id=location),
            start=110,
            duration=12,
            added_ms=80.0,
        ),
        Fault(
            fault_id=1,
            target=FaultTarget(kind=SegmentKind.MIDDLE, asn=culprit),
            start=130,
            duration=12,
            added_ms=90.0,
        ),
        Fault(
            fault_id=2,
            target=FaultTarget(kind=SegmentKind.CLOUD, location_id=location),
            start=330,
            duration=10,
            added_ms=80.0,
        ),
    )
    return Scenario(world, faults, ())


def _pipeline(scenario, *, store=None, warm_start=False, metrics=None):
    pipeline = BlameItPipeline(
        scenario,
        config=BlameItConfig(history_days=1, background_interval_buckets=36),
        seed=SEED,
        rng_per_bucket=True,
        store=store,
        warm_start=warm_start,
        metrics=metrics,
    )
    if not warm_start:
        pipeline.warmup(0, 96, stride=4)
    return pipeline


@pytest.fixture(scope="module")
def served_scenario(multi_day_world) -> Scenario:
    return _faulty_scenario(multi_day_world)


@pytest.fixture(scope="module")
def batch_digest(served_scenario) -> str:
    """The batch ``run()`` digest every daemon variant must reproduce."""
    report = _pipeline(served_scenario).run(START, END)
    assert report.closed_middle or report.closed_cloud  # faults fired
    return _digest(report)


class TestDaemonEquivalence:
    def test_scenario_daemon_matches_batch(self, served_scenario, batch_digest):
        daemon = BlameItDaemon(
            _pipeline(served_scenario), START, END, source=ScenarioSource()
        )
        report = daemon.run()
        assert _digest(report) == batch_digest

    def test_kill_resume_matches_batch(
        self, served_scenario, batch_digest, tmp_path
    ):
        """Mid-day cadence checkpoints restore byte-identically — the
        held expected-RTT table travels with the checkpoint."""
        store = CheckpointStore(tmp_path)
        daemon = BlameItDaemon(
            _pipeline(served_scenario, store=store),
            START,
            END,
            checkpoint_every=48,
            kill_at=250,  # mid-day: 250 % 288 != 0
        )
        with pytest.raises(ChaosKill):
            daemon.run()
        store.close()
        store = CheckpointStore(tmp_path)
        assert store.latest_time() == 240  # newest cadence point before kill
        resumed = BlameItDaemon(
            _pipeline(served_scenario, store=store, warm_start=True),
            START,
            END,
            checkpoint_every=48,
        )
        report = resumed.run()
        store.close()
        assert _digest(report) == batch_digest

    def test_jsonl_source_matches_batch(
        self, served_scenario, batch_digest, tmp_path
    ):
        """External batches (batch-local vocabularies) fold identically
        to generator batches."""
        path = tmp_path / "quartets.jsonl"
        generator = BatchQuartetGenerator(served_scenario)
        quartets = []
        for time in range(START, END):
            batch = generator.generate(
                time, rng=np.random.default_rng((SEED, time))
            )
            quartets.extend(batch.to_quartets())
        assert write_quartets_jsonl(path, quartets) == len(quartets)
        daemon = BlameItDaemon(
            _pipeline(served_scenario), START, END, source=JsonlSource(path)
        )
        report = daemon.run()
        assert _digest(report) == batch_digest

    def test_graceful_stop_checkpoints_and_resumes(
        self, served_scenario, batch_digest, tmp_path
    ):
        """request_stop → final checkpoint at the cursor → resume is
        byte-identical (the SIGTERM path, minus the signal)."""
        store = CheckpointStore(tmp_path)
        daemon = BlameItDaemon(
            _pipeline(served_scenario, store=store), START, END
        )

        class _StopAfter(ScenarioSource):
            def __init__(self, source_daemon, at):
                self.daemon = source_daemon
                self.at = at

            def next_batch(self, time):
                if time >= self.at:
                    self.daemon.request_stop()
                return None

        daemon.source = _StopAfter(daemon, 217)  # any mid-day bucket
        assert daemon.run() is None
        # The stop request lands while bucket 217 is in flight; the
        # final checkpoint records the next cursor.
        assert store.latest_time() == 218
        store.close()
        store = CheckpointStore(tmp_path)
        resumed = BlameItDaemon(
            _pipeline(served_scenario, store=store, warm_start=True),
            START,
            END,
        )
        report = resumed.run()
        store.close()
        assert _digest(report) == batch_digest


class TestRetention:
    def test_bounded_memory_report_identical(self, multi_day_world, tmp_path):
        """With a retention window, old closed issues leave memory (peak
        resident tracked-issue count drops) yet the final report is
        byte-identical to the unbounded run.

        Two early faults close on day 0 and age out of the 1-day window
        before the three late faults close, so the bounded daemon never
        holds all five at once. ``history_days=2`` so day-1 faults are
        detectable.
        """
        location = multi_day_world.locations[0].location_id
        faults = tuple(
            Fault(
                fault_id=i,
                target=FaultTarget(
                    kind=SegmentKind.CLOUD, location_id=location
                ),
                start=start,
                duration=8,
                added_ms=80.0,
            )
            for i, start in enumerate((110, 140, 450, 480, 510))
        )
        scenario = Scenario(multi_day_world, faults, ())

        def pipeline(store=None):
            built = BlameItPipeline(
                scenario,
                config=BlameItConfig(
                    history_days=2, background_interval_buckets=36
                ),
                seed=SEED,
                rng_per_bucket=True,
                store=store,
            )
            built.warmup(0, 96, stride=4)
            return built

        unbounded = BlameItDaemon(pipeline(), START, 600)
        baseline = unbounded.run()
        assert len(baseline.closed_cloud) == 5

        store = CheckpointStore(tmp_path)
        bounded = BlameItDaemon(
            pipeline(store=store),
            START,
            600,
            retention_days=1,
        )
        report = bounded.run()
        store.close()
        assert _digest(report) == _digest(baseline)
        assert sum(bounded._archived.values()) > 0
        assert bounded.peak_tracked < unbounded.peak_tracked


class TestAlertStreaming:
    def test_sink_receives_alert_per_closed_issue(self, served_scenario):
        streamed = []
        daemon = BlameItDaemon(
            _pipeline(served_scenario), START, END, alert_sink=streamed.append
        )
        report = daemon.run()
        assert daemon.alerts_emitted == len(streamed)
        # Every issue that closed during stepping streamed exactly one
        # alert; issues still open at the horizon close at finalize
        # without streaming, so streamed ⊆ closed.
        assert 0 < len(streamed) <= (
            len(report.closed_middle)
            + len(report.closed_cloud)
            + len(report.closed_client)
        )
        streamed_keys = {
            (str(alert.blame), alert.location_id, alert.first_seen)
            for alert in streamed
        }
        closed_keys = {
            (str(alert.blame), alert.location_id, alert.first_seen)
            for alert in (
                [BlameItPipeline.middle_alert(i) for i in report.closed_middle]
                + [
                    BlameItPipeline.segment_alert(i)
                    for i in report.closed_cloud + report.closed_client
                ]
            )
        }
        assert streamed_keys <= closed_keys


class TestJsonlCodec:
    def test_row_roundtrip(self, served_scenario):
        quartets = served_scenario.generate_quartets(
            START, np.random.default_rng(0)
        )
        assert quartets
        for quartet in quartets[:25]:
            row = json.loads(json.dumps(quartet_to_row(quartet)))
            assert quartet_from_row(row) == quartet

    def test_missing_buckets_yield_empty_batches(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text("")
        source = JsonlSource(path)
        assert source.times() == []
        assert len(source.next_batch(123)) == 0


class TestHttpSurface:
    def test_endpoints_serve_live_state(self, served_scenario):
        daemon = BlameItDaemon(_pipeline(served_scenario), START, END)
        failures = []

        def _get(port, endpoint):
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{endpoint}", timeout=10
            ) as response:
                return json.loads(response.read())

        with StatusServer(daemon) as server:
            polled = {}

            def poll():
                try:
                    polled["status"] = _get(server.port, "/status")
                    polled["issues"] = _get(server.port, "/issues")
                except Exception as exc:  # pragma: no cover - surfaced below
                    failures.append(exc)

            # Poll concurrently with the run: the lock makes each
            # response a consistent snapshot of a moving pipeline.
            timer = threading.Timer(0.5, poll)
            timer.start()
            report = daemon.run()
            timer.cancel()
            poll()  # at least one deterministic poll after completion
            status = _get(server.port, "/status")
            issues = _get(server.port, "/issues")
        assert not failures
        assert report is not None
        assert status["cursor"] == END
        assert status["start"] == START and status["end"] == END
        assert status["uptime_s"] > 0
        assert isinstance(issues, list)

    def test_unknown_endpoint_404(self, served_scenario):
        daemon = BlameItDaemon(_pipeline(served_scenario), START, START + 1)
        with StatusServer(daemon) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope", timeout=10
                )
            assert excinfo.value.code == 404

    def test_metrics_endpoint_snapshot_validates(self, served_scenario):
        from repro.obs import MetricsRegistry

        pipeline = _pipeline(
            served_scenario, metrics=MetricsRegistry()
        )
        daemon = BlameItDaemon(pipeline, START, START + 60)
        with StatusServer(daemon) as server:
            daemon.run()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/metrics", timeout=10
            ) as response:
                snapshot = json.loads(response.read())
        validate_snapshot(snapshot)
        assert snapshot["counters"]["pipeline.buckets"] == 60
