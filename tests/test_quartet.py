"""Tests for repro.core.quartet: aggregation and sample gating."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.telemetry import RTTSample
from repro.core.quartet import (
    Quartet,
    QuartetContext,
    QuartetKey,
    aggregate_samples,
    split_half_means,
)
from repro.net.geo import Region


def _context(prefix24, location_id, time) -> QuartetContext:
    return QuartetContext(users=10, client_asn=65000, middle=(10, 20), region=Region.USA)


class TestAggregation:
    def test_mean_and_count(self):
        samples = [
            RTTSample(0, 1, "edge-X", False, 10.0),
            RTTSample(0, 1, "edge-X", False, 20.0),
            RTTSample(0, 1, "edge-X", False, 30.0),
        ]
        quartets = aggregate_samples(samples, _context)
        assert len(quartets) == 1
        assert quartets[0].mean_rtt_ms == pytest.approx(20.0)
        assert quartets[0].n_samples == 3

    def test_keys_separate_quartets(self):
        samples = [
            RTTSample(0, 1, "edge-X", False, 10.0),
            RTTSample(0, 1, "edge-X", True, 10.0),  # mobile differs
            RTTSample(0, 2, "edge-X", False, 10.0),  # prefix differs
            RTTSample(0, 1, "edge-Y", False, 10.0),  # location differs
            RTTSample(1, 1, "edge-X", False, 10.0),  # bucket differs
        ]
        quartets = aggregate_samples(samples, _context)
        assert len(quartets) == 5

    def test_min_samples_gate(self):
        samples = [RTTSample(0, 1, "edge-X", False, 10.0)] * 4
        assert aggregate_samples(samples, _context, min_samples=5) == []
        assert len(aggregate_samples(samples, _context, min_samples=4)) == 1

    def test_context_attached(self):
        samples = [RTTSample(0, 7, "edge-X", False, 10.0)]
        quartet = aggregate_samples(samples, _context)[0]
        assert quartet.users == 10
        assert quartet.client_asn == 65000
        assert quartet.middle == (10, 20)
        assert quartet.region is Region.USA
        assert quartet.key == QuartetKey(7, "edge-X", False, 0)

    def test_sorted_output(self):
        samples = [
            RTTSample(5, 1, "edge-X", False, 1.0),
            RTTSample(0, 9, "edge-B", False, 1.0),
            RTTSample(0, 2, "edge-A", False, 1.0),
        ]
        quartets = aggregate_samples(samples, _context)
        keys = [(q.time, q.location_id, q.prefix24) for q in quartets]
        assert keys == sorted(keys)

    @given(
        rtts=st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=50
        )
    )
    def test_mean_within_sample_range(self, rtts):
        samples = [RTTSample(0, 1, "edge-X", False, r) for r in rtts]
        quartet = aggregate_samples(samples, _context)[0]
        assert min(rtts) - 1e-9 <= quartet.mean_rtt_ms <= max(rtts) + 1e-9
        assert quartet.n_samples == len(rtts)


class TestSplitHalfMeans:
    def test_identical_halves(self):
        a, b = split_half_means([10.0, 10.0, 10.0, 10.0])
        assert a == b == pytest.approx(10.0)

    def test_interleaved_split(self):
        a, b = split_half_means([1.0, 100.0, 1.0, 100.0])
        assert a == pytest.approx(1.0)
        assert b == pytest.approx(100.0)

    def test_needs_two(self):
        with pytest.raises(ValueError):
            split_half_means([1.0])


class TestQuartetRecord:
    def test_namedtuple_fields(self):
        quartet = Quartet(
            time=3,
            prefix24=9,
            location_id="edge-X",
            mobile=True,
            mean_rtt_ms=55.0,
            n_samples=12,
            users=40,
            client_asn=65001,
            middle=(10,),
            region=Region.EUROPE,
        )
        assert quartet.key.time == 3
        assert quartet.key.mobile is True
        replaced = quartet._replace(middle=(11,))
        assert replaced.middle == (11,)
        assert quartet.middle == (10,)
