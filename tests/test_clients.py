"""Tests for repro.cloud.clients: population generation."""

import numpy as np
import pytest

from repro.cloud.clients import PopulationParams, generate_population
from repro.net.asn import ASTier


@pytest.fixture(scope="module")
def population(small_topology):
    return generate_population(
        small_topology.topology, PopulationParams(), np.random.default_rng(9)
    )


class TestGeneratePopulation:
    def test_every_access_as_has_prefixes(self, small_topology, population):
        access = {a.asn for a in small_topology.topology.ases_by_tier(ASTier.ACCESS)}
        assert set(population.asns) == access

    def test_prefixes_unique(self, population):
        keys = [p.prefix24 for p in population]
        assert len(keys) == len(set(keys))

    def test_prefix_covered_by_its_announcement(self, population):
        for prefix in population:
            assert prefix.announcement.contains_prefix24(prefix.prefix24)

    def test_announcement_owned_by_one_as(self, population):
        owner: dict = {}
        for prefix in population:
            assert owner.setdefault(prefix.announcement, prefix.asn) == prefix.asn

    def test_users_positive(self, population):
        assert all(p.users >= 1 for p in population)

    def test_metro_belongs_to_as(self, small_topology, population):
        topo = small_topology.topology
        for prefix in population:
            assert prefix.metro in topo.as_info(prefix.asn).metros

    def test_mobile_is_per_as(self, population):
        """All prefixes of an AS share the AS's mobility class."""
        for asn in population.asns:
            flags = {p.mobile for p in population.in_as(asn)}
            assert len(flags) == 1

    def test_announce_to_is_subset_of_providers(self, small_topology, population):
        topo = small_topology.topology
        for prefix in population:
            if prefix.announce_to is None:
                continue
            assert prefix.announce_to <= set(topo.providers_of(prefix.asn))

    def test_announce_to_consistent_within_announcement(self, population):
        scopes: dict = {}
        for prefix in population:
            scope = scopes.setdefault(prefix.announcement, prefix.announce_to)
            assert scope == prefix.announce_to

    def test_sparse_large_blocks(self, small_topology):
        """Paper skew: /24s inside larger announcements have fewer users."""
        params = PopulationParams(announcements_per_as=(3, 3))
        pop = generate_population(
            small_topology.topology, params, np.random.default_rng(17)
        )
        small_users = [p.users for p in pop if p.announcement.length == 24]
        big_users = [p.users for p in pop if p.announcement.length == 20]
        assert small_users and big_users
        assert np.mean(big_users) < np.mean(small_users)

    def test_deterministic(self, small_topology):
        a = generate_population(
            small_topology.topology, PopulationParams(), np.random.default_rng(3)
        )
        b = generate_population(
            small_topology.topology, PopulationParams(), np.random.default_rng(3)
        )
        assert [p.prefix24 for p in a] == [p.prefix24 for p in b]
        assert [p.users for p in a] == [p.users for p in b]

    def test_lookup_api(self, population):
        first = population.prefixes[0]
        assert population.get(first.prefix24) is first
        with pytest.raises(KeyError):
            population.get(123456789 & 0xFFFFFF)
        assert population.total_users() == sum(p.users for p in population)
        assert first.announcement in population.announcements()
