"""Tests for repro.core.background: baselines and probe scheduling."""

import numpy as np
import pytest

from repro.cloud.traceroute import TracerouteEngine, TracerouteResult, TracerouteView
from repro.core.background import BackgroundProber, BaselineStore
from repro.net.addressing import BGPPrefix
from repro.net.bgp import BGPTable


def _trace(loc="edge-A", prefix=1, time=0, path=(1, 10, 30)) -> TracerouteResult:
    cumulative = tuple(2.0 * (i + 1) for i in range(len(path)))
    return TracerouteResult(
        location_id=loc, prefix24=prefix, time=time, path=path, cumulative_ms=cumulative
    )


class TestBaselineStore:
    def test_lookup_by_middle(self):
        store = BaselineStore()
        store.put(_trace(prefix=1))
        found = store.get("edge-A", prefix24=2, middle=(10,))
        assert found is not None
        assert found.prefix24 == 1  # same path, different /24 is fine

    def test_prefix_fallback_on_new_path(self):
        store = BaselineStore()
        store.put(_trace(prefix=1, path=(1, 10, 30)))
        found = store.get("edge-A", prefix24=1, middle=(11,))
        assert found is not None
        assert found.path == (1, 10, 30)  # the stale old-path baseline

    def test_before_filter(self):
        store = BaselineStore()
        store.put(_trace(time=5))
        store.put(_trace(time=20))
        assert store.get("edge-A", 1, (10,), before=21).time == 20
        assert store.get("edge-A", 1, (10,), before=20).time == 5
        assert store.get("edge-A", 1, (10,), before=5) is None
        assert store.get("edge-A", 1, (10,)).time == 20

    def test_history_bounded(self):
        store = BaselineStore()
        for time in range(BaselineStore.HISTORY + 40):
            store.put(_trace(time=time))
        history = store._by_middle[("edge-A", (10,))]
        assert len(history) == BaselineStore.HISTORY
        # Oldest retained entries come from the tail of the insert stream.
        assert history[0].time == 40

    def test_get_candidates_order_and_filter(self):
        store = BaselineStore()
        for time in (3, 7, 12):
            store.put(_trace(time=time))
        candidates = store.get_candidates("edge-A", 1, (10,), before=12)
        assert [c.time for c in candidates] == [7, 3]
        assert store.get_candidates("edge-A", 1, (10,), before=3) == []
        all_candidates = store.get_candidates("edge-A", 1, (10,))
        assert [c.time for c in all_candidates] == [12, 7, 3]

    def test_miss(self):
        store = BaselineStore()
        assert store.get("edge-A", 1, (10,)) is None


class _WorldOracle:
    """Two registered targets, fixed views."""

    def traceroute_view(self, location_id, prefix24, time):
        return TracerouteView(path=(1, 10, 30), cumulative_ms=(2.0, 4.0, 6.0))


def _prober(interval=12, churn=True) -> BackgroundProber:
    engine = TracerouteEngine(_WorldOracle(), np.random.default_rng(0), hop_noise_ms=0.0)
    return BackgroundProber(
        engine=engine,
        store=BaselineStore(),
        interval_buckets=interval,
        churn_triggered=churn,
    )


class TestPeriodicProbing:
    def test_each_target_probed_once_per_interval(self):
        prober = _prober(interval=12)
        prober.register_target("edge-A", (10,), 1)
        prober.register_target("edge-B", (10,), 2)
        total = 0
        for time in range(24):
            total += len(prober.run_bucket(time))
        assert total == 4  # 2 targets x 2 intervals
        assert prober.probes_periodic == 4

    def test_stagger_deterministic(self):
        first = _prober(interval=12)
        second = _prober(interval=12)
        for prober in (first, second):
            prober.register_target("edge-A", (10,), 1)
        fire_first = [t for t in range(12) if first.run_bucket(t)]
        fire_second = [t for t in range(12) if second.run_bucket(t)]
        assert fire_first == fire_second

    def test_register_idempotent(self):
        prober = _prober()
        assert prober.register_target("edge-A", (10,), 1) is True
        assert prober.register_target("edge-A", (10,), 99) is False
        assert prober.target_count == 1

    def test_seed_target_stores_baseline(self):
        prober = _prober()
        prober.register_target("edge-A", (10,), 1)
        result = prober.seed_target("edge-A", (10,), 1, time=5)
        assert result is not None
        assert prober.store.get("edge-A", 1, (10,)) is not None

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            _prober(interval=0)


class TestChurnTriggers:
    def _update(self, time=7):
        table = BGPTable("edge-A")
        prefix = BGPPrefix.from_prefix24(1, 24)
        table.install(prefix, (1, 10, 30), 0)
        return table.install(prefix, (1, 11, 30), time)

    def test_update_triggers_probe(self):
        prober = _prober()
        prober.register_target("edge-A", (10,), 1)
        result = prober.on_bgp_update(self._update())
        assert result is not None
        assert prober.probes_churn == 1

    def test_new_middle_tracked_after_announce(self):
        prober = _prober()
        prober.register_target("edge-A", (10,), 1)
        prober.on_bgp_update(self._update())
        assert ("edge-A", (11,)) in prober._targets

    def test_disabled_churn_ignores_updates(self):
        prober = _prober(churn=False)
        prober.register_target("edge-A", (10,), 1)
        assert prober.on_bgp_update(self._update()) is None
        assert prober.probes_churn == 0

    def test_unknown_prefix_ignored(self):
        prober = _prober()
        prober.register_target("edge-A", (10,), 999999)
        assert prober.on_bgp_update(self._update()) is None

    def test_other_location_ignored(self):
        prober = _prober()
        prober.register_target("edge-B", (10,), 1)
        assert prober.on_bgp_update(self._update()) is None

    def test_probe_totals(self):
        prober = _prober(interval=1)
        prober.register_target("edge-A", (10,), 1)
        prober.run_bucket(0)
        prober.on_bgp_update(self._update())
        assert prober.probes_total == 2
