"""Tests for repro.net.routing: valley-free route computation."""

import numpy as np
import pytest

from repro.net.asn import ASTier, AutonomousSystem
from repro.net.geo import Region
from repro.net.routing import RouteComputer, RoutePreference
from repro.net.topology import (
    ASTopology,
    CLOUD_ASN,
    TopologyParams,
    generate_topology,
)


def _hand_topology() -> ASTopology:
    """cloud(1) peers t1(10); t1 sells to transit(20); transit sells to
    access(30, 31); cloud also peers transit(21) which sells to 31."""
    topo = ASTopology()
    topo.add_as(AutonomousSystem(1, "cloud", ASTier.CLOUD))
    topo.add_as(AutonomousSystem(10, "t1", ASTier.TIER1))
    topo.add_as(AutonomousSystem(20, "transitA", ASTier.TRANSIT))
    topo.add_as(AutonomousSystem(21, "transitB", ASTier.TRANSIT))
    topo.add_as(AutonomousSystem(30, "ispA", ASTier.ACCESS))
    topo.add_as(AutonomousSystem(31, "ispB", ASTier.ACCESS))
    topo.add_peering(1, 10)
    topo.add_provider_customer(10, 20)
    topo.add_provider_customer(10, 21)
    topo.add_provider_customer(20, 30)
    topo.add_provider_customer(20, 31)
    topo.add_provider_customer(21, 31)
    topo.add_peering(1, 21)
    return topo


class TestHandBuiltRoutes:
    def test_single_route_via_tier1(self):
        computer = RouteComputer(_hand_topology(), 1)
        route = computer.best_route(30)
        assert route is not None
        assert route.path == (1, 10, 20, 30)
        assert route.preference is RoutePreference.PEER

    def test_prefers_shorter_peer_route(self):
        computer = RouteComputer(_hand_topology(), 1)
        route = computer.best_route(31)
        # Direct peering with transitB gives a 3-hop route; via tier1 is 4.
        assert route.path == (1, 21, 31)

    def test_candidates_sorted_best_first(self):
        computer = RouteComputer(_hand_topology(), 1)
        candidates = computer.candidate_routes(31)
        assert len(candidates) == 2
        assert candidates[0].path == (1, 21, 31)
        assert candidates[1].path == (1, 10, 20, 31)
        assert [len(c.path) for c in candidates] == sorted(
            len(c.path) for c in candidates
        )

    def test_announce_restriction_prunes_provider(self):
        computer = RouteComputer(_hand_topology(), 1)
        # AS31 announces only to transitA (20): the direct 21-route vanishes.
        route = computer.best_route(31, announce_to={20})
        assert route.path == (1, 10, 20, 31)

    def test_unreachable_when_no_announcement(self):
        topo = _hand_topology()
        computer = RouteComputer(topo, 1)
        assert computer.best_route(31, announce_to=frozenset()) is None

    def test_unknown_destination_raises(self):
        computer = RouteComputer(_hand_topology(), 1)
        with pytest.raises(KeyError):
            computer.candidate_routes(999)

    def test_invalidate_after_edge_removal(self):
        topo = _hand_topology()
        computer = RouteComputer(topo, 1)
        assert computer.best_route(31).path == (1, 21, 31)
        topo.remove_edge(21, 31)
        computer.invalidate()
        assert computer.best_route(31).path == (1, 10, 20, 31)


def _is_valley_free(topo: ASTopology, path: tuple[int, ...]) -> bool:
    """Check the uphill / one-peer / downhill shape of a path."""
    # Phases: 0 = uphill (customer->provider), 1 = peer link used,
    # 2 = downhill (provider->customer).
    phase = 0
    for a, b in zip(path, path[1:]):
        if topo.is_provider_of(b, a):  # uphill step
            if phase != 0:
                return False
        elif topo.is_provider_of(a, b):  # downhill step
            phase = 2
        else:  # peer step
            if phase != 0:
                return False
            phase = 2
    return True


class TestGeneratedRoutes:
    @pytest.fixture(scope="class")
    def generated(self):
        params = TopologyParams(
            regions=(Region.USA, Region.EUROPE), n_tier1=4, transits_per_region=3
        )
        return generate_topology(params, np.random.default_rng(3))

    def test_all_access_ases_reachable(self, generated):
        computer = RouteComputer(generated.topology, CLOUD_ASN)
        for asn in generated.access_asns:
            assert computer.best_route(asn) is not None

    def test_all_routes_valley_free(self, generated):
        computer = RouteComputer(generated.topology, CLOUD_ASN)
        for asn in generated.access_asns:
            for route in computer.candidate_routes(asn):
                assert _is_valley_free(generated.topology, route.path), route.path

    def test_paths_are_simple(self, generated):
        computer = RouteComputer(generated.topology, CLOUD_ASN)
        for asn in generated.access_asns:
            for route in computer.candidate_routes(asn):
                assert len(set(route.path)) == len(route.path)

    def test_route_endpoints(self, generated):
        computer = RouteComputer(generated.topology, CLOUD_ASN)
        for asn in generated.access_asns[:10]:
            route = computer.best_route(asn)
            assert route.path[0] == CLOUD_ASN
            assert route.path[-1] == asn

    def test_cache_stability(self, generated):
        computer = RouteComputer(generated.topology, CLOUD_ASN)
        asn = generated.access_asns[0]
        first = computer.candidate_routes(asn)
        second = computer.candidate_routes(asn)
        assert first is second  # cached object identity

    def test_restricted_announcement_subset_of_full(self, generated):
        """Restricting announcements can only remove candidate routes."""
        topo = generated.topology
        computer = RouteComputer(topo, CLOUD_ASN)
        for asn in generated.access_asns[:8]:
            providers = topo.providers_of(asn)
            if len(providers) < 2:
                continue
            full = {r.path for r in computer.candidate_routes(asn)}
            restricted = {
                r.path
                for r in computer.candidate_routes(asn, announce_to={providers[0]})
            }
            assert restricted <= full
