"""Tests for repro.analysis.report: table and CDF rendering."""

import pytest

from repro.analysis.report import render_cdf, render_series, render_table


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]
        assert "1.500" in lines[3]
        assert "22" in lines[4]

    def test_bool_rendering(self):
        text = render_table(["x"], [[True], [False]])
        assert "yes" in text
        assert "no" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_no_title(self):
        text = render_table(["a"], [["v"]])
        assert text.splitlines()[0].startswith("a")


class TestRenderCDF:
    def test_auto_grid(self):
        text = render_cdf("durations", [1.0, 2.0, 3.0, 10.0], points=5)
        assert "CDF: durations (n=4)" in text
        assert "1.000" in text  # final F(x)

    def test_explicit_grid(self):
        text = render_cdf("x", [1.0, 2.0], grid=[1.0, 2.0])
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_constant_sample(self):
        text = render_cdf("flat", [5.0, 5.0, 5.0])
        assert "5.00" in text


class TestRenderSeries:
    def test_labels(self):
        text = render_series("s", [(1, 2)], x_label="hour", y_label="bad%")
        assert "hour" in text
        assert "bad%" in text
        assert text.splitlines()[0] == "s"
