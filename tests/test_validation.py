"""Tests for repro.analysis.validation: incident and corroboration harnesses."""

import numpy as np
import pytest

from repro.analysis.validation import (
    SuiteCase,
    build_scenario_suite,
    build_warmup_state,
    corroboration_ratios,
    score_case,
    suite_world_params,
    validate_incident,
    validate_scenario_suite,
)
from repro.baselines.asmetro import as_metro_quartets
from repro.core.blame import Blame
from repro.core.pipeline import BlameItPipeline, PipelineReport, SegmentIssue
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.incidents import (
    ADVERSARIAL_ARCHETYPES,
    PAPER_ARCHETYPES,
    DemandSurge,
    IncidentArchetype,
    IncidentSpec,
    generate_incidents,
)
from repro.sim.scenario import Scenario


@pytest.fixture(scope="module")
def warmup(small_world):
    return build_warmup_state(small_world, days=1, stride=3)


class TestWarmupState:
    def test_table_populated(self, warmup):
        assert warmup.table.cloud
        assert warmup.table.middle

    def test_targets_unique(self, warmup):
        keys = [(loc, middle) for loc, middle, _ in warmup.targets]
        assert len(keys) == len(set(keys))

    def test_apply_preloads_pipeline(self, small_world, warmup):
        scenario = Scenario(small_world, (), ())
        pipeline = BlameItPipeline(scenario, fixed_table=warmup.table)
        warmup.apply(pipeline)
        assert pipeline.background.target_count == len(warmup.targets)
        some_key = warmup.client_observations[0][0]
        time = warmup.client_observations[0][1]
        assert pipeline.client_predictor.predict(some_key, time + 288) > 0

    def test_rekey_changes_middle_keys(self, small_world):
        state = build_warmup_state(
            small_world, days=1, stride=24, rekey=as_metro_quartets
        )
        for (middle, _mobile) in state.table.middle:
            assert len(middle) == 2  # synthetic (asn, metro-id) keys


class TestValidateIncident:
    def test_batch_matches(self, small_world, warmup):
        specs = generate_incidents(small_world, 10, np.random.default_rng(2))
        outcomes = [validate_incident(small_world, spec, warmup) for spec in specs]
        matched = sum(1 for o in outcomes if o.matched)
        assert matched == 10

    def test_outcome_fields(self, small_world, warmup):
        spec = generate_incidents(small_world, 1, np.random.default_rng(4))[0]
        outcome = validate_incident(small_world, spec, warmup)
        assert outcome.spec is spec
        assert outcome.report.total_quartets > 0
        assert outcome.matched == (
            outcome.segment_matched and outcome.culprit_matched
        )


class TestCorroboration:
    @pytest.fixture(scope="class")
    def faulty_scenario(self, small_world):
        pool = small_world.middle_asn_pool()
        faults = (
            Fault(
                fault_id=0,
                target=FaultTarget(kind=SegmentKind.MIDDLE, asn=pool[0]),
                start=150,
                duration=24,
                added_ms=90.0,
            ),
            Fault(
                fault_id=1,
                target=FaultTarget(
                    kind=SegmentKind.CLIENT, asn=small_world.population.asns[0]
                ),
                start=150,
                duration=24,
                added_ms=90.0,
            ),
        )
        return Scenario(small_world, faults, ())

    def test_ratios_bounded(self, faulty_scenario, warmup):
        ratios = corroboration_ratios(faulty_scenario, 150, 168, warmup.table)
        assert ratios
        assert all(0.0 <= r <= 1.0 for r in ratios.values())

    def test_bgp_path_beats_as_metro(self, small_world, faulty_scenario, warmup):
        """Figure 11's ordering: BGP-path grouping corroborates at least
        as well as ⟨AS, Metro⟩ on average."""
        path_ratios = corroboration_ratios(faulty_scenario, 150, 168, warmup.table)
        metro_state = build_warmup_state(
            small_world, days=1, stride=3, rekey=as_metro_quartets
        )
        metro_ratios = corroboration_ratios(
            faulty_scenario, 150, 168, metro_state.table, use_as_metro=True
        )
        assert path_ratios
        assert metro_ratios
        path_mean = np.mean(list(path_ratios.values()))
        metro_mean = np.mean(list(metro_ratios.values()))
        assert path_mean >= metro_mean - 0.05


def _spec(
    incident_id,
    segment,
    asn,
    start=150,
    duration=12,
    archetype=IncidentArchetype.PEERING_FAULT,
    surges=(),
):
    """A minimal hand-built incident label for scoring tests."""
    return IncidentSpec(
        incident_id=incident_id,
        archetype=archetype,
        faults=(),
        reroutes=(),
        start=start,
        duration=duration,
        expected_segment=segment,
        expected_culprit_asn=asn,
        description="synthetic",
        surges=tuple(surges),
    )


def _cloud_issue(location_id, first, last, impact):
    return SegmentIssue(
        blame=Blame.CLOUD, key=location_id, location_id=location_id,
        culprit_asn=None, first_seen=first, last_seen=last, impact=impact,
    )


def _client_issue(asn, location_id, first, last, impact):
    return SegmentIssue(
        blame=Blame.CLIENT, key=asn, location_id=location_id,
        culprit_asn=asn, first_seen=first, last_seen=last, impact=impact,
    )


def _report(cloud=(), client=()):
    return PipelineReport(
        start=0, end=300, closed_cloud=list(cloud), closed_client=list(client)
    )


class TestValidateIncidentEdgeCases:
    def test_sub_noise_fault_never_matches_its_label(
        self, small_world, warmup
    ):
        """A fault too small to breach any target is invisible to the
        pipeline: whatever blame (if any) surfaces is ambient noise,
        never the injected middle AS — and the outcome must not match."""
        asn = small_world.middle_asn_pool()[0]
        spec = IncidentSpec(
            incident_id=0,
            archetype=IncidentArchetype.PEERING_FAULT,
            faults=(
                Fault(
                    fault_id=0,
                    target=FaultTarget(kind=SegmentKind.MIDDLE, asn=asn),
                    start=150,
                    duration=12,
                    added_ms=2.0,
                ),
            ),
            reroutes=(),
            start=150,
            duration=12,
            expected_segment=SegmentKind.MIDDLE,
            expected_culprit_asn=asn,
            description="sub-noise fault",
        )
        outcome = validate_incident(small_world, spec, warmup)
        assert not outcome.matched
        assert (outcome.blamed_segment, outcome.culprit_asn) != (
            SegmentKind.MIDDLE,
            asn,
        )

    def test_corroboration_ratios_on_issue_free_window(
        self, small_world, warmup
    ):
        """No latency issues in the window -> empty ratios, gracefully."""
        scenario = Scenario(small_world, (), ())
        ratios = corroboration_ratios(scenario, 150, 156, warmup.table)
        assert ratios == {}


class TestScoreCase:
    """Attribution semantics over synthetic reports: pooling, claims,
    ambient discounts, and the flash-crowd negative expectation."""

    def test_zero_issues_nothing_blamed(self, small_world):
        spec = _spec(0, SegmentKind.CLOUD, small_world.cloud_asn)
        (outcome,) = score_case(
            small_world, SuiteCase(0, (spec,), "single"), _report()
        )
        assert outcome.blamed_segment is None
        assert not outcome.matched

    def test_multi_issue_pooling_beats_single_larger_issue(self, small_world):
        """Two client issues naming one AS pool into a single candidate
        that outweighs a larger lone cloud issue."""
        asn = small_world.population.asns[0]
        spec = _spec(0, SegmentKind.CLIENT, asn)
        report = _report(
            cloud=[_cloud_issue("edge-X", 150, 160, 50.0)],
            client=[
                _client_issue(asn, "edge-X", 150, 158, 30.0),
                _client_issue(asn, "edge-Y", 152, 162, 30.0),
            ],
        )
        (outcome,) = score_case(
            small_world, SuiteCase(0, (spec,), "single"), report
        )
        assert outcome.blamed_segment is SegmentKind.CLIENT
        assert outcome.culprit_asn == asn
        assert outcome.matched

    def test_overlapping_incidents_each_match_their_own_blame(
        self, small_world
    ):
        """Two concurrent incidents: the cloud incident's (larger) blame
        is claimed by it, so the client incident is matched against its
        own smaller blame instead of losing the dominance contest."""
        asn = small_world.population.asns[0]
        cloud_spec = _spec(0, SegmentKind.CLOUD, small_world.cloud_asn)
        client_spec = _spec(1, SegmentKind.CLIENT, asn)
        report = _report(
            cloud=[_cloud_issue("edge-X", 148, 164, 500.0)],
            client=[_client_issue(asn, "edge-X", 150, 160, 10.0)],
        )
        outcomes = score_case(
            small_world,
            SuiteCase(0, (cloud_spec, client_spec), "mixed"),
            report,
        )
        assert all(o.matched for o in outcomes)

    def test_ambient_pair_discounted_unless_expected(self, small_world):
        """A chronic (ambient) blame never outcompetes an incident's
        expected blame — but an incident *expecting* the ambient pair
        must still find it."""
        asn_expected = small_world.population.asns[0]
        asn_ambient = small_world.population.asns[1]
        ambient = frozenset({(SegmentKind.CLIENT, asn_ambient)})
        spec = _spec(0, SegmentKind.CLIENT, asn_expected)
        report = _report(
            client=[
                _client_issue(asn_ambient, "edge-X", 148, 164, 500.0),
                _client_issue(asn_expected, "edge-X", 150, 160, 10.0),
            ],
        )
        case = SuiteCase(0, (spec,), "single")
        (with_discount,) = score_case(
            small_world, case, report, ambient_pairs=ambient
        )
        assert with_discount.matched
        (without_discount,) = score_case(small_world, case, report)
        assert not without_discount.matched
        # The ambient pair stays eligible for a spec that expects it.
        expecting = _spec(1, SegmentKind.CLIENT, asn_ambient)
        (outcome,) = score_case(
            small_world,
            SuiteCase(1, (expecting,), "single"),
            report,
            ambient_pairs=ambient,
        )
        assert outcome.matched

    @pytest.fixture
    def surge_metro(self, small_world):
        metro = small_world.population.prefixes[0].metro
        locations = {
            slot.location.location_id
            for slot in small_world.slots
            if slot.client.metro.name == metro.name
        }
        return metro.name, sorted(locations)

    def _flash_spec(self, metro_name):
        return _spec(
            0, None, None,
            archetype=IncidentArchetype.FLASH_CROWD,
            surges=[
                DemandSurge(
                    surge_id=0, metro_name=metro_name,
                    start=150, duration=12, multiplier=3.0,
                )
            ],
        )

    def test_flash_crowd_violated_by_in_scope_issue(
        self, small_world, surge_metro
    ):
        metro_name, locations = surge_metro
        report = _report(cloud=[_cloud_issue(locations[0], 150, 158, 40.0)])
        (outcome,) = score_case(
            small_world,
            SuiteCase(0, (self._flash_spec(metro_name),), "single"),
            report,
        )
        assert not outcome.matched
        assert outcome.blamed_segment is SegmentKind.CLOUD

    def test_flash_crowd_ignores_out_of_scope_issue(
        self, small_world, surge_metro
    ):
        metro_name, locations = surge_metro
        report = _report(
            cloud=[_cloud_issue("not-a-serving-location", 150, 158, 40.0)]
        )
        (outcome,) = score_case(
            small_world,
            SuiteCase(0, (self._flash_spec(metro_name),), "single"),
            report,
        )
        assert outcome.matched
        assert outcome.blamed_segment is None


class TestBuildScenarioSuite:
    @pytest.fixture(scope="class")
    def suite(self, suite_world):
        return build_scenario_suite(suite_world, seed=7)

    def test_deterministic(self, suite_world, suite):
        assert suite == build_scenario_suite(suite_world, seed=7)

    def test_structure_singles_then_mixed(self, suite):
        families = PAPER_ARCHETYPES + ADVERSARIAL_ARCHETYPES
        singles = [c for c in suite if c.kind == "single"]
        mixed = [c for c in suite if c.kind == "mixed"]
        assert len(singles) == len(families)
        assert len(mixed) == len(ADVERSARIAL_ARCHETYPES)
        assert [c.case_id for c in suite] == list(range(len(suite)))

    def test_incident_ids_unique_across_suite(self, suite):
        ids = [s.incident_id for c in suite for s in c.specs]
        assert len(ids) == len(set(ids))

    def test_mixed_backgrounds_are_staggered_paper_incidents(self, suite):
        for case in suite:
            if case.kind != "mixed":
                continue
            subject, background = case.specs
            assert subject.archetype in ADVERSARIAL_ARCHETYPES
            assert background.archetype in PAPER_ARCHETYPES
            assert background.start < subject.start
            # The background's tail is (at most) two buckets past the
            # subject's onset — nearly over at the decision point.
            assert (
                background.start + background.duration
                <= subject.start + 2
            )

    def test_empty_families_rejected(self, suite_world):
        with pytest.raises(ValueError):
            build_scenario_suite(suite_world, seed=7, families=())


class TestValidateScenarioSuite:
    @pytest.fixture(scope="class")
    def result(self, suite_world):
        """A reduced two-family suite (one pipeline run per case)."""
        return validate_scenario_suite(
            suite_world,
            seed=7,
            families=(
                IncidentArchetype.CLOUD_MAINTENANCE,
                IncidentArchetype.FLASH_CROWD,
            ),
        )

    def test_scorecard_shape(self, result):
        scorecard = result.scorecard
        assert scorecard["format_version"] >= 1
        assert scorecard["seed"] == 7
        assert set(scorecard["families"]) == {
            "cloud_maintenance",
            "flash_crowd",
        }
        overall = scorecard["overall"]
        assert overall["incidents"] == sum(
            stats["incidents"] for stats in scorecard["families"].values()
        )
        assert 0.0 <= overall["accuracy"] <= 1.0
        assert "ambient_blames" in scorecard

    def test_confusion_matrix_counts_every_incident(self, result):
        scorecard = result.scorecard
        total = sum(
            count
            for row in scorecard["confusion"].values()
            for count in row.values()
        )
        assert total == scorecard["overall"]["incidents"]

    def test_cases_carry_reports_for_drilldown(self, result):
        assert result.cases
        for case_outcome in result.cases:
            assert case_outcome.report.total_quartets > 0
            assert len(case_outcome.outcomes) == len(case_outcome.case.specs)

    def test_suite_world_params_is_ringed(self):
        params = suite_world_params()
        assert params.rings == 3
        assert params.sparse_ring_share == pytest.approx(0.45)
