"""Tests for repro.analysis.validation: incident and corroboration harnesses."""

import numpy as np
import pytest

from repro.analysis.validation import (
    build_warmup_state,
    corroboration_ratios,
    validate_incident,
)
from repro.baselines.asmetro import as_metro_quartets
from repro.core.pipeline import BlameItPipeline
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.incidents import generate_incidents
from repro.sim.scenario import Scenario


@pytest.fixture(scope="module")
def warmup(small_world):
    return build_warmup_state(small_world, days=1, stride=3)


class TestWarmupState:
    def test_table_populated(self, warmup):
        assert warmup.table.cloud
        assert warmup.table.middle

    def test_targets_unique(self, warmup):
        keys = [(loc, middle) for loc, middle, _ in warmup.targets]
        assert len(keys) == len(set(keys))

    def test_apply_preloads_pipeline(self, small_world, warmup):
        scenario = Scenario(small_world, (), ())
        pipeline = BlameItPipeline(scenario, fixed_table=warmup.table)
        warmup.apply(pipeline)
        assert pipeline.background.target_count == len(warmup.targets)
        some_key = warmup.client_observations[0][0]
        time = warmup.client_observations[0][1]
        assert pipeline.client_predictor.predict(some_key, time + 288) > 0

    def test_rekey_changes_middle_keys(self, small_world):
        state = build_warmup_state(
            small_world, days=1, stride=24, rekey=as_metro_quartets
        )
        for (middle, _mobile) in state.table.middle:
            assert len(middle) == 2  # synthetic (asn, metro-id) keys


class TestValidateIncident:
    def test_batch_matches(self, small_world, warmup):
        specs = generate_incidents(small_world, 10, np.random.default_rng(2))
        outcomes = [validate_incident(small_world, spec, warmup) for spec in specs]
        matched = sum(1 for o in outcomes if o.matched)
        assert matched == 10

    def test_outcome_fields(self, small_world, warmup):
        spec = generate_incidents(small_world, 1, np.random.default_rng(4))[0]
        outcome = validate_incident(small_world, spec, warmup)
        assert outcome.spec is spec
        assert outcome.report.total_quartets > 0
        assert outcome.matched == (
            outcome.segment_matched and outcome.culprit_matched
        )


class TestCorroboration:
    @pytest.fixture(scope="class")
    def faulty_scenario(self, small_world):
        pool = small_world.middle_asn_pool()
        faults = (
            Fault(
                fault_id=0,
                target=FaultTarget(kind=SegmentKind.MIDDLE, asn=pool[0]),
                start=150,
                duration=24,
                added_ms=90.0,
            ),
            Fault(
                fault_id=1,
                target=FaultTarget(
                    kind=SegmentKind.CLIENT, asn=small_world.population.asns[0]
                ),
                start=150,
                duration=24,
                added_ms=90.0,
            ),
        )
        return Scenario(small_world, faults, ())

    def test_ratios_bounded(self, faulty_scenario, warmup):
        ratios = corroboration_ratios(faulty_scenario, 150, 168, warmup.table)
        assert ratios
        assert all(0.0 <= r <= 1.0 for r in ratios.values())

    def test_bgp_path_beats_as_metro(self, small_world, faulty_scenario, warmup):
        """Figure 11's ordering: BGP-path grouping corroborates at least
        as well as ⟨AS, Metro⟩ on average."""
        path_ratios = corroboration_ratios(faulty_scenario, 150, 168, warmup.table)
        metro_state = build_warmup_state(
            small_world, days=1, stride=3, rekey=as_metro_quartets
        )
        metro_ratios = corroboration_ratios(
            faulty_scenario, 150, 168, metro_state.table, use_as_metro=True
        )
        assert path_ratios
        assert metro_ratios
        path_mean = np.mean(list(path_ratios.values()))
        metro_mean = np.mean(list(metro_ratios.values()))
        assert path_mean >= metro_mean - 0.05
