"""Tests for repro.core.config: parameter validation and defaults."""

import pytest

from repro.core.config import BlameItConfig


class TestDefaults:
    def test_paper_values(self):
        config = BlameItConfig()
        assert config.tau == 0.8
        assert config.min_aggregate_quartets == 5
        assert config.min_quartet_samples == 10
        assert config.history_days == 14
        assert config.client_history_days == 3
        assert config.run_interval_buckets == 3  # 15 minutes
        assert config.background_interval_buckets == 144  # twice a day
        assert config.churn_triggered_probes is True


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tau": 0.0},
            {"tau": 1.5},
            {"min_aggregate_quartets": 0},
            {"min_quartet_samples": 0},
            {"history_days": 0},
            {"run_interval_buckets": 0},
            {"probe_budget_per_window": -1},
            {"background_interval_buckets": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BlameItConfig(**kwargs)

    def test_frozen(self):
        config = BlameItConfig()
        with pytest.raises(AttributeError):
            config.tau = 0.5
