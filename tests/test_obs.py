"""Tests for repro.obs: instruments, registry, merging, null path, and
the sharded-vs-sequential metrics equivalence."""

import pytest

from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.core.thresholds import ExpectedRTTLearner
from repro.obs import (
    NULL_REGISTRY,
    PHASE_SPANS,
    MetricsRegistry,
    NullRegistry,
    validate_snapshot,
)
from repro.perf.sharded import ShardedPipeline
from repro.sim.scenario import Scenario


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert registry.counter("x").value == 5
        assert registry.counter("y").value == 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(7.5)
        assert registry.gauge("g").value == 7.5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.histogram("h").observe(value)
        histogram = registry.histogram("h")
        assert histogram.count == 3
        assert histogram.total == pytest.approx(15.0)
        assert histogram.min == 2.0
        assert histogram.max == 8.0
        assert histogram.mean == pytest.approx(5.0)

    def test_span_records_wall_clock(self):
        registry = MetricsRegistry()
        with registry.span("work"):
            pass
        with registry.span("work"):
            pass
        spans = registry.snapshot()["spans"]
        assert spans["work"]["count"] == 2
        assert spans["work"]["total"] >= 0.0

    def test_span_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("work"):
                raise RuntimeError("boom")
        assert registry.snapshot()["spans"]["work"]["count"] == 1


class TestSnapshotAndMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(4.0)
        with registry.span("s"):
            pass
        return registry

    def test_snapshot_schema(self):
        snapshot = self._populated().snapshot()
        validate_snapshot(snapshot)
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_merge_adds_counters_and_combines_histograms(self):
        parent = self._populated()
        worker = MetricsRegistry()
        worker.counter("c").inc(2)
        worker.counter("only_worker").inc()
        worker.histogram("h").observe(10.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("c").value == 5
        assert parent.counter("only_worker").value == 1
        histogram = parent.histogram("h")
        assert histogram.count == 2
        assert histogram.max == 10.0
        assert histogram.min == 4.0

    def test_merge_empty_histogram_keeps_extremes(self):
        parent = MetricsRegistry()
        parent.histogram("h").observe(4.0)
        empty = MetricsRegistry()
        _ = empty.histogram("h")  # created but never observed
        parent.merge_snapshot(empty.snapshot())
        assert parent.histogram("h").count == 1
        assert parent.histogram("h").min == 4.0

    def test_merge_none_is_noop(self):
        registry = self._populated()
        registry.merge_snapshot(None)
        assert registry.counter("c").value == 3

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_snapshot([])  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            validate_snapshot({"counters": {}})
        snapshot = MetricsRegistry().snapshot()
        snapshot["counters"]["bad"] = -1
        with pytest.raises(ValueError):
            validate_snapshot(snapshot)
        with pytest.raises(ValueError):
            validate_snapshot(
                MetricsRegistry().snapshot(), require_spans=("phase.passive",)
            )


class TestNullRegistry:
    def test_disabled_and_empty(self):
        registry = NullRegistry()
        assert not registry.enabled
        registry.counter("c").inc(5)
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.0)
        with registry.span("s"):
            pass
        snapshot = registry.snapshot()
        validate_snapshot(snapshot)
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == {}

    def test_singletons_no_growth(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.span("a") is NULL_REGISTRY.span("b")

    def test_merge_is_noop(self):
        registry = NullRegistry()
        other = MetricsRegistry()
        other.counter("c").inc()
        registry.merge_snapshot(other.snapshot())
        assert registry.snapshot()["counters"] == {}


class TestPipelineMetrics:
    @pytest.fixture(scope="class")
    def trained(self, small_world):
        scenario = Scenario.from_world(small_world)
        learner = ExpectedRTTLearner(history_days=1)
        pipeline = BlameItPipeline(scenario, learner=learner)
        pipeline.warmup(0, 96, stride=4)
        return scenario, learner.table()

    def _config(self, **overrides) -> BlameItConfig:
        defaults = dict(history_days=1, background_interval_buckets=36)
        defaults.update(overrides)
        return BlameItConfig(**defaults)

    def test_report_metrics_none_by_default(self, trained):
        scenario, table = trained
        pipeline = BlameItPipeline(
            scenario, config=self._config(), fixed_table=table, seed=11
        )
        report = pipeline.run(100, 112)
        assert report.metrics is None

    def test_sequential_snapshot_covers_phases(self, trained):
        scenario, table = trained
        metrics = MetricsRegistry()
        pipeline = BlameItPipeline(
            scenario,
            config=self._config(),
            fixed_table=table,
            seed=11,
            metrics=metrics,
        )
        report = pipeline.run(100, 130)
        assert report.metrics is not None
        validate_snapshot(report.metrics)
        # Every phase except learning (fixed table) must have fired.
        expected = set(PHASE_SPANS) - {"phase.learning"}
        assert expected <= set(report.metrics["spans"])
        counters = report.metrics["counters"]
        assert counters["pipeline.buckets"] == 30
        assert counters["pipeline.quartets"] == report.total_quartets
        blamed = sum(
            count
            for name, count in counters.items()
            if name.startswith("passive.blame.")
        )
        assert blamed == report.bad_quartets
        assert counters["probe.on_demand.issued"] == report.probes_on_demand

    def test_sharded_merges_worker_counters(self, trained):
        """Sharded and sequential runs agree on every counter, and the
        sharded report itself stays byte-identical with metrics on."""
        scenario, table = trained
        sequential_metrics = MetricsRegistry()
        sequential = BlameItPipeline(
            scenario,
            config=self._config(),
            fixed_table=table,
            seed=11,
            rng_per_bucket=True,
            metrics=sequential_metrics,
        )
        expected = sequential.run(100, 160)
        sharded_metrics = MetricsRegistry()
        sharded = ShardedPipeline(
            scenario,
            config=self._config(vectorized_passive=True),
            fixed_table=table,
            seed=11,
            n_workers=1,
            buckets_per_shard=17,
            metrics=sharded_metrics,
        )
        got = sharded.run(100, 160)
        assert got.total_quartets == expected.total_quartets
        assert got.blame_counts == expected.blame_counts
        assert got.bad_quartets == expected.bad_quartets
        assert [
            (i.key, i.first_seen, i.last_seen) for i in got.closed_middle
        ] == [
            (i.key, i.first_seen, i.last_seen) for i in expected.closed_middle
        ]
        assert got.metrics is not None and expected.metrics is not None
        validate_snapshot(got.metrics)
        # Counters merge exactly: worker-side passive/generation counts
        # fold into the parent's tracking/probing counts. The sharded
        # driver additionally keeps shard.* dispatch bookkeeping with no
        # sequential counterpart; everything else must match exactly.
        shared = {
            name: value
            for name, value in got.metrics["counters"].items()
            if not name.startswith("shard.")
        }
        assert shared == expected.metrics["counters"]
        assert got.metrics["counters"]["shard.runs"] == 4  # ceil(60 / 17)
        assert got.metrics["gauges"] == expected.metrics["gauges"]
        # Worker spans made it across the process boundary.
        assert "phase.generation" in got.metrics["spans"]
        assert "passive.vectorized" in got.metrics["spans"]
