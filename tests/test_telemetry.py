"""Tests for repro.cloud.telemetry: collector, stream join, bucket store."""

import numpy as np
import pytest

from repro.cloud.telemetry import (
    BUCKETS_PER_HOUR,
    HourlyBucketStore,
    RTTCollector,
    RTTSample,
    join_request_streams,
)


def _sample(time=0, prefix=1, loc="edge-X", mobile=False, rtt=42.0) -> RTTSample:
    return RTTSample(time, prefix, loc, mobile, rtt)


class TestRTTCollector:
    def test_add_and_slice(self):
        collector = RTTCollector()
        collector.add_all([_sample(time=0), _sample(time=0), _sample(time=3)])
        assert collector.total_samples == 3
        assert len(collector.samples_at(0)) == 2
        assert len(collector.samples_at(3)) == 1
        assert collector.samples_at(7) == ()
        assert collector.buckets() == (0, 3)


class TestStreamJoin:
    def test_join_matches_request_ids(self):
        ip_stream = [(1, 100), (2, 200), (3, 300)]
        rtt_stream = [
            (2, 0, "edge-X", False, 30.0),
            (1, 0, "edge-Y", True, 80.0),
        ]
        joined = list(join_request_streams(ip_stream, rtt_stream))
        assert joined == [
            RTTSample(0, 200, "edge-X", False, 30.0),
            RTTSample(0, 100, "edge-Y", True, 80.0),
        ]

    def test_unmatched_rtt_records_dropped(self):
        joined = list(
            join_request_streams([(1, 100)], [(9, 0, "edge-X", False, 1.0)])
        )
        assert joined == []

    def test_unmatched_ip_records_ignored(self):
        joined = list(
            join_request_streams(
                [(1, 100), (2, 200)], [(1, 0, "edge-X", False, 1.0)]
            )
        )
        assert len(joined) == 1


class TestHourlyBucketStore:
    def test_read_window_returns_exact_samples(self):
        store = HourlyBucketStore(buckets_per_hour=16, rng=np.random.default_rng(0))
        for time in range(0, 24):
            store.write(_sample(time=time, prefix=time))
        window = store.read_window(3, 9)
        assert [s.time for s in window] == list(range(3, 9))

    def test_read_amplification_counted(self):
        """Reading 15 minutes must scan the whole hour (§6.1 quirk)."""
        store = HourlyBucketStore(buckets_per_hour=8, rng=np.random.default_rng(0))
        for time in range(0, BUCKETS_PER_HOUR):  # one hour of data
            for _ in range(10):
                store.write(_sample(time=time))
        store.read_window(9, 12)  # last 15 minutes of the hour
        # All 120 tuples of the hour were scanned for a 30-tuple answer.
        assert store.tuples_scanned == 10 * BUCKETS_PER_HOUR

    def test_read_spanning_hours(self):
        store = HourlyBucketStore(buckets_per_hour=4, rng=np.random.default_rng(0))
        store.write(_sample(time=11))
        store.write(_sample(time=12))  # next hour
        window = store.read_window(11, 13)
        assert [s.time for s in window] == [11, 12]

    def test_invalid_window(self):
        store = HourlyBucketStore()
        with pytest.raises(ValueError):
            store.read_window(5, 5)

    def test_empty_hours_ok(self):
        store = HourlyBucketStore()
        assert store.read_window(1000, 1010) == []
