"""Tests for repro.core.prediction: duration and client-count predictors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.prediction import ClientCountPredictor, DurationPredictor


class TestDurationPredictor:
    def test_prior_on_cold_start(self):
        predictor = DurationPredictor(prior_mean_buckets=4.0)
        assert predictor.expected_remaining(0) == pytest.approx(4.0)

    def test_mean_residual_life(self):
        predictor = DurationPredictor()
        predictor.observe_all([2, 4, 10])
        # Given elapsed 3: survivors {4, 10}; E[D|D>3] = 7 → remaining 4.
        assert predictor.expected_remaining(3) == pytest.approx(4.0)

    def test_long_tail_raises_expectation(self):
        """The §5.3 property: having lasted longer predicts lasting longer
        under a long-tailed distribution."""
        predictor = DurationPredictor()
        durations = [1] * 60 + [3] * 20 + [12] * 12 + [100] * 8
        predictor.observe_all(durations)
        short = predictor.expected_remaining(0)
        longer = predictor.expected_remaining(10)
        assert longer > short

    def test_survival_probability(self):
        predictor = DurationPredictor()
        predictor.observe_all([2, 4, 10, 20])
        # Given > 3: survivors {4, 10, 20}; of those > 9: {10, 20}.
        assert predictor.survival_probability(3, 6) == pytest.approx(2 / 3)
        assert predictor.survival_probability(0, 0) == pytest.approx(1.0)
        assert predictor.survival_probability(100, 1) == 0.0

    def test_per_key_history_preferred(self):
        predictor = DurationPredictor(min_key_history=2)
        predictor.observe_all([1, 1, 1, 1, 1])  # global: fleeting
        predictor.observe_all([50, 60], key="slow-path")
        slow = predictor.expected_remaining(0, key="slow-path")
        unseen = predictor.expected_remaining(0, key="unseen")
        assert slow > 40  # per-key history wins
        assert unseen < slow  # unseen keys see the (diluted) global pool

    def test_sparse_key_falls_back_to_global(self):
        predictor = DurationPredictor(min_key_history=5)
        predictor.observe_all([1, 1, 1, 1])
        predictor.observe(100, key="rare")
        assert predictor.expected_remaining(0, key="rare") < 50

    def test_validation(self):
        predictor = DurationPredictor()
        with pytest.raises(ValueError):
            predictor.observe(0)
        with pytest.raises(ValueError):
            predictor.expected_remaining(-1)
        with pytest.raises(ValueError):
            predictor.survival_probability(-1, 0)
        with pytest.raises(ValueError):
            DurationPredictor(min_key_history=0)
        with pytest.raises(ValueError):
            DurationPredictor(prior_mean_buckets=0)

    @given(
        durations=st.lists(st.integers(min_value=1, max_value=200), min_size=1),
        elapsed=st.integers(min_value=0, max_value=100),
    )
    def test_remaining_nonnegative(self, durations, elapsed):
        predictor = DurationPredictor()
        predictor.observe_all(durations)
        assert predictor.expected_remaining(elapsed) > 0

    @given(durations=st.lists(st.integers(min_value=1, max_value=50), min_size=2))
    def test_survival_monotone_in_additional(self, durations):
        predictor = DurationPredictor()
        predictor.observe_all(durations)
        probabilities = [predictor.survival_probability(0, t) for t in range(0, 60, 5)]
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    @given(
        durations=st.lists(st.integers(min_value=1, max_value=200), min_size=1),
        elapsed=st.integers(min_value=0, max_value=250),
        additional=st.integers(min_value=0, max_value=250),
    )
    def test_fast_path_matches_list_scans(self, durations, elapsed, additional):
        """The sorted-array/prefix-sum queries equal the O(n) reference.

        The reference below is the pre-optimization list-scan
        implementation, inlined; the int64 suffix sums are exact, so the
        resulting floats must match bit-for-bit, not approximately.
        """
        predictor = DurationPredictor()
        predictor.observe_all(durations)

        survivors = [d for d in durations if d > elapsed]
        if survivors:
            expected_remaining = sum(survivors) / len(survivors) - elapsed
        else:
            expected_remaining = predictor.prior_mean_buckets
        assert predictor.expected_remaining(elapsed) == expected_remaining

        alive = len(survivors)
        survive = sum(1 for d in durations if d > elapsed + additional)
        expected_survival = survive / alive if alive else 0.0
        assert predictor.survival_probability(elapsed, additional) == expected_survival

    def test_interleaved_queries_and_observes(self):
        """The per-pool stats cache must refresh as pools grow."""
        predictor = DurationPredictor()
        predictor.observe_all([5, 5, 5])
        assert predictor.expected_remaining(0) == pytest.approx(5.0)
        predictor.observe_all([11, 11, 11])
        assert predictor.expected_remaining(0) == pytest.approx(8.0)
        predictor.observe_all([9] * 10, key="k")
        assert predictor.expected_remaining(0, key="k") == pytest.approx(9.0)


class TestClientCountPredictor:
    def test_same_window_previous_days(self):
        predictor = ClientCountPredictor(history_days=3)
        time = 5 * 288 + 100
        predictor.observe("path", time - 288, 90)
        predictor.observe("path", time - 2 * 288, 110)
        predictor.observe("path", time - 3 * 288, 100)
        assert predictor.predict("path", time) == pytest.approx(100.0)

    def test_window_specificity(self):
        """Counts from other windows of the day are ignored."""
        predictor = ClientCountPredictor()
        time = 5 * 288 + 100
        predictor.observe("path", time - 288 + 7, 1_000_000)
        predictor.observe("path", time - 288, 50)
        assert predictor.predict("path", time) == pytest.approx(50.0)

    def test_falls_back_to_recent(self):
        predictor = ClientCountPredictor()
        predictor.observe("path", 10, 42)
        assert predictor.predict("path", 500) == pytest.approx(42.0)

    def test_unseen_key_zero(self):
        assert ClientCountPredictor().predict("nope", 100) == 0.0

    def test_history_days_limit(self):
        predictor = ClientCountPredictor(history_days=1)
        time = 5 * 288
        predictor.observe("path", time - 288, 10)
        predictor.observe("path", time - 2 * 288, 1000)  # beyond window
        assert predictor.predict("path", time) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientCountPredictor(history_days=0)
        with pytest.raises(ValueError):
            ClientCountPredictor().observe("k", 0, -1)

    def test_observe_bucket_matches_scalar(self):
        """Bulk per-bucket observes leave identical predictable state."""
        scalar = ClientCountPredictor(history_days=2)
        bulk = ClientCountPredictor(history_days=2)
        keys = [f"path-{i}" for i in range(5)]
        for time in range(0, 6 * 288, 288 // 4):
            counts = [(time + i * 7) % 50 for i in range(len(keys))]
            for key, count in zip(keys, counts):
                scalar.observe(key, time, count)
            bulk.observe_bucket(list(keys), time, counts)
        for key in keys + ["never-seen"]:
            for query in range(5 * 288, 6 * 288, 53):
                assert bulk.predict(key, query) == scalar.predict(key, query)

    def test_observe_bucket_validation(self):
        predictor = ClientCountPredictor()
        with pytest.raises(ValueError):
            predictor.observe_bucket(["a", "b"], 0, [3, -1])
        # Empty bucket is a no-op: it must not advance the eviction day.
        predictor.observe("k", 0, 7)
        predictor.observe_bucket([], 400 * 288, [])
        assert predictor.predict("k", 100) == pytest.approx(7.0)

    def test_bounded_memory(self):
        """Retained history is O(keys × history_days), not O(total days).

        The regression this pins down: counts used to accumulate for the
        whole run, so a month-scale simulation held every bucket it ever
        saw. Steady-state bucket count must not grow between day 10 and
        day 40 of continuous observation.
        """
        predictor = ClientCountPredictor(history_days=3)
        keys = ["p1", "p2"]

        def run_until(day_end, start=0):
            for time in range(start, day_end * 288, 3):
                predictor.observe_bucket(list(keys), time, [1, 2])

        run_until(10)
        buckets_at_10 = len(predictor._buckets)
        run_until(40, start=10 * 288)
        assert len(predictor._buckets) == buckets_at_10
        # history_days + 1 days retained (one day of eviction slack),
        # plus the current day being filled.
        assert len(predictor._buckets) <= (3 + 2) * 288 / 3 + 1
        # Predictions over the readable window are unaffected.
        assert predictor.predict("p2", 40 * 288 - 3) == pytest.approx(2.0)
