"""Documentation regression tests.

Two guarantees:

* ``docs/cli.md`` cannot rot: its per-verb help blocks are generated
  from :func:`repro.cli.build_parser` (with ``COLUMNS`` pinned so the
  argparse wrapping is stable), and the checked-in file must match the
  generator byte for byte. Regenerate after an intentional CLI change::

      PYTHONPATH=src:tests python -m test_docs

* No dead relative links: every ``[text](path)`` markdown link in
  README.md, ARCHITECTURE.md, DESIGN.md, and docs/ must point at a file
  that exists in the repository.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

REPO = Path(__file__).parent.parent
CLI_DOC_PATH = REPO / "docs" / "cli.md"

#: Documents whose relative links are checked.
LINKED_DOCS = ("README.md", "ARCHITECTURE.md", "DESIGN.md", "docs/cli.md")

#: argparse wraps help to the terminal width; pin it so the generated
#: doc is identical on every machine.
HELP_COLUMNS = "80"

VERBS = ("simulate", "characterize", "diagnose", "validate", "serve")

EXIT_CODES = """\
## Exit codes

Every verb uses the same exit-code convention:

| code | meaning |
|---|---|
| 0 | success (for `validate`: every incident / paper-era family passed) |
| 1 | ran to completion but a check failed — `validate` found mislocalized incidents, or `validate --suite` found a paper-era family below `--accuracy-floor` |
| 2 | usage error: invalid flag values, unloadable scenario/checkpoint, mismatched `--checkpoint-dir`/`--resume` |
| 3 | chaos kill: the run hit `--kill-at` (state was checkpointed first when a store was configured) |
"""

EXAMPLES = """\
## Examples

```bash
# Build a world and print its shape (fault mix, horizon, population).
python -m repro simulate --seed 7 --regions USA Europe --days 2

# The §2 measurement study over one simulated day.
python -m repro characterize --seed 7 --days 2 --start 288

# Diagnose a day; choose how the probe budget is spent (see
# repro.core.probeplan): naive | paper | clustered.
python -m repro diagnose --seed 7 --days 2 --start 288 --budget 5 \\
    --planner clustered

# Diagnose with 4 worker processes, metrics snapshot, and checkpoints.
python -m repro diagnose --seed 7 --days 2 --workers 4 \\
    --metrics-json metrics.json --checkpoint-dir ckpt

# Resume the same run after an interruption.
python -m repro diagnose --seed 7 --days 2 --resume ckpt

# Score localization against labelled incidents (exit 1 on a miss).
python -m repro validate --seed 11 --incidents 20

# The adversarial scenario suite with its per-family scorecard.
python -m repro validate --suite --save-scorecard scorecard.json

# Run as a streaming daemon with live HTTP status and checkpoints.
python -m repro serve --seed 7 --days 2 --start 288 \\
    --checkpoint-dir ckpt --checkpoint-every 36 --alerts-jsonl alerts.jsonl
```
"""


def generated_cli_doc() -> str:
    """The canonical docs/cli.md content, from the live parser."""
    os.environ["COLUMNS"] = HELP_COLUMNS
    from repro.cli import build_parser

    parser = build_parser()
    sections = [
        "# CLI reference — `python -m repro`",
        "",
        "Generated from `repro.cli.build_parser()`; do not edit the help",
        "blocks by hand. Regenerate with:",
        "",
        "```bash",
        "PYTHONPATH=src:tests python -m test_docs",
        "```",
        "",
        "Every command builds a reproducible world from its seed: same",
        "flags, same results, on any machine.",
        "",
        "```",
        parser.format_help().rstrip(),
        "```",
        "",
        EXIT_CODES,
    ]
    subactions = {
        action.dest: action
        for action in parser._actions
        if action.dest == "command"
    }["command"]
    for verb in VERBS:
        sub = subactions.choices[verb]
        sections += [
            f"## `repro {verb}`",
            "",
            "```",
            sub.format_help().rstrip(),
            "```",
            "",
        ]
    sections.append(EXAMPLES)
    return "\n".join(sections)


class TestCliDoc:
    def test_cli_doc_matches_parser(self):
        assert CLI_DOC_PATH.exists(), (
            "docs/cli.md missing; generate with "
            "`PYTHONPATH=src:tests python -m test_docs`"
        )
        expected = generated_cli_doc()
        actual = CLI_DOC_PATH.read_text(encoding="utf-8")
        assert actual == expected, (
            "docs/cli.md is stale relative to repro.cli.build_parser(); "
            "regenerate with `PYTHONPATH=src:tests python -m test_docs`"
        )

    def test_doc_covers_every_verb_and_flag(self):
        """Belt and braces: each verb section names all of its flags."""
        os.environ["COLUMNS"] = HELP_COLUMNS
        from repro.cli import build_parser

        parser = build_parser()
        doc = generated_cli_doc()
        command_action = next(
            action for action in parser._actions if action.dest == "command"
        )
        for verb, sub in command_action.choices.items():
            assert f"## `repro {verb}`" in doc
            for action in sub._actions:
                for option in action.option_strings:
                    assert option in doc, (verb, option)

    def test_exit_codes_documented(self):
        doc = CLI_DOC_PATH.read_text(encoding="utf-8")
        for code in ("| 0 |", "| 1 |", "| 2 |", "| 3 |"):
            assert code in doc


_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def _relative_links(path: Path) -> list[tuple[str, Path]]:
    links = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        links.append((target, (path.parent / target).resolve()))
    return links


class TestDocLinks:
    def test_no_dead_relative_links(self):
        dead = []
        for name in LINKED_DOCS:
            doc = REPO / name
            if not doc.exists():
                dead.append((name, "document itself missing"))
                continue
            for target, resolved in _relative_links(doc):
                if not resolved.exists():
                    dead.append((name, target))
        assert not dead, f"dead relative links: {dead}"

    def test_architecture_is_linked_from_readme(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "ARCHITECTURE.md" in readme
        assert "docs/cli.md" in readme


if __name__ == "__main__":
    CLI_DOC_PATH.parent.mkdir(parents=True, exist_ok=True)
    CLI_DOC_PATH.write_text(generated_cli_doc(), encoding="utf-8")
    print(f"CLI reference written to {CLI_DOC_PATH}")
