"""Tests for repro.cloud.locations."""

import numpy as np
import pytest

from repro.cloud.locations import default_rtt_targets, make_locations
from repro.net.geo import Region


class TestRTTTargets:
    def test_mobile_target_looser(self):
        targets = default_rtt_targets()
        for region in Region:
            assert targets.target_ms(region, mobile=True) > targets.target_ms(
                region, mobile=False
            )

    def test_usa_aggressive(self):
        """The Figure 2 inversion: USA thresholds are the tightest."""
        targets = default_rtt_targets()
        usa = targets.target_ms(Region.USA, mobile=False)
        for region in Region:
            assert usa <= targets.target_ms(region, mobile=False)


class TestMakeLocations:
    def test_count_and_regions(self):
        rng = np.random.default_rng(0)
        locations = make_locations((Region.USA, Region.BRAZIL), 2, rng)
        assert len(locations) == 4
        assert sum(1 for l in locations if l.region is Region.USA) == 2
        assert sum(1 for l in locations if l.region is Region.BRAZIL) == 2

    def test_distinct_metros_within_region(self):
        rng = np.random.default_rng(0)
        locations = make_locations((Region.USA,), 4, rng)
        metros = [l.metro.name for l in locations]
        assert len(set(metros)) == 4

    def test_ids_unique(self):
        rng = np.random.default_rng(0)
        locations = make_locations(tuple(Region), 3, rng)
        ids = [l.location_id for l in locations]
        assert len(ids) == len(set(ids))

    def test_overflow_cycles_metros(self):
        """More locations than metros reuses metros with a suffix."""
        rng = np.random.default_rng(0)
        locations = make_locations((Region.BRAZIL,), 5, rng)  # 3 metros
        assert len(locations) == 5
        assert len({l.location_id for l in locations}) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_locations((Region.USA,), 0, np.random.default_rng(0))
