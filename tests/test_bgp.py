"""Tests for repro.net.bgp: tables, updates, the listener."""

import pytest

from repro.net.addressing import BGPPrefix, parse_prefix24
from repro.net.bgp import BGPListener, BGPTable, BGPUpdateKind


def _prefix(text: str = "10.0.0", length: int = 24) -> BGPPrefix:
    return BGPPrefix.from_prefix24(parse_prefix24(text), length)


class TestBGPTable:
    def test_install_new_route_emits_announce(self):
        table = BGPTable("edge-X")
        update = table.install(_prefix(), (1, 10, 30), time=5)
        assert update is not None
        assert update.kind is BGPUpdateKind.ANNOUNCE
        assert update.old_path is None
        assert update.new_path == (1, 10, 30)
        assert update.time == 5
        assert len(table) == 1

    def test_reinstall_same_path_is_noop(self):
        table = BGPTable("edge-X")
        table.install(_prefix(), (1, 10, 30), time=0)
        assert table.install(_prefix(), (1, 10, 30), time=1) is None

    def test_path_change_carries_old_path(self):
        table = BGPTable("edge-X")
        table.install(_prefix(), (1, 10, 30), time=0)
        update = table.install(_prefix(), (1, 11, 30), time=2)
        assert update.old_path == (1, 10, 30)
        assert update.new_path == (1, 11, 30)

    def test_withdraw(self):
        table = BGPTable("edge-X")
        table.install(_prefix(), (1, 10, 30), time=0)
        update = table.withdraw(_prefix(), time=3)
        assert update.kind is BGPUpdateKind.WITHDRAW
        assert update.new_path is None
        assert table.lookup(_prefix()) is None

    def test_withdraw_absent_is_noop(self):
        table = BGPTable("edge-X")
        assert table.withdraw(_prefix(), time=0) is None

    def test_entries_sorted(self):
        table = BGPTable("edge-X")
        table.install(_prefix("10.0.1"), (1, 30), 0)
        table.install(_prefix("10.0.0"), (1, 30), 0)
        entries = table.entries()
        assert [e.prefix for e in entries] == sorted(e.prefix for e in entries)

    def test_route_entry_middle(self):
        table = BGPTable("edge-X")
        table.install(_prefix(), (1, 10, 20, 30), 0)
        entry = table.lookup(_prefix())
        assert entry.middle == (10, 20)
        assert entry.origin_asn == 30


class TestBGPListener:
    def test_publish_and_log(self):
        listener = BGPListener()
        table = BGPTable("edge-X")
        listener.publish(table.install(_prefix(), (1, 30), 1))
        listener.publish(None)  # ignored
        assert len(listener.log) == 1

    def test_subscribers_notified(self):
        listener = BGPListener()
        seen = []
        listener.subscribe(seen.append)
        table = BGPTable("edge-X")
        listener.publish(table.install(_prefix(), (1, 30), 1))
        assert len(seen) == 1

    def test_updates_between(self):
        listener = BGPListener()
        table = BGPTable("edge-X")
        listener.publish(table.install(_prefix("10.0.0"), (1, 30), 1))
        listener.publish(table.install(_prefix("10.0.1"), (1, 30), 5))
        listener.publish(table.withdraw(_prefix("10.0.0"), 9))
        assert len(listener.updates_between(0, 5)) == 1
        assert len(listener.updates_between(5, 10)) == 2

    def test_churn_fraction(self):
        listener = BGPListener()
        table = BGPTable("edge-X")
        listener.publish(table.install(_prefix("10.0.0"), (1, 30), 1))
        listener.publish(table.install(_prefix("10.0.0"), (1, 10, 30), 2))
        assert listener.churn_fraction(total_paths=4) == pytest.approx(0.25)

    def test_churn_fraction_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BGPListener().churn_fraction(0)
