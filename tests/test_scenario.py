"""Tests for repro.sim.scenario: the world, telemetry, ground truth."""

import numpy as np
import pytest

from repro.net.asn import middle_asns
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.scenario import (
    BUCKETS_PER_DAY,
    RerouteEvent,
    Scenario,
    ScenarioParams,
)
from repro.net.geo import Region


class TestWorldBuild:
    def test_slots_reference_population(self, small_world):
        prefixes = {p.prefix24 for p in small_world.population}
        for slot in small_world.slots:
            assert slot.client.prefix24 in prefixes

    def test_primary_plus_secondary_share(self, small_world):
        shares: dict[int, float] = {}
        for slot in small_world.slots:
            shares[slot.client.prefix24] = (
                shares.get(slot.client.prefix24, 0.0) + slot.share
            )
        for total in shares.values():
            assert total == pytest.approx(1.0)

    def test_calibrated_targets_dominate_baselines(self, small_world):
        """§2.1: no prefix is consistently above its badness threshold."""
        for slot in small_world.slots:
            path = small_world.mapper.path_for(slot.location, slot.client)
            if path is None:
                continue
            baseline = small_world.latency.path_latency(
                slot.location.metro, path, slot.client.metro, slot.client.mobile
            )
            target = small_world.targets.target_ms(
                slot.location.region, slot.client.mobile
            )
            assert baseline.total_ms < target

    def test_location_lookup(self, small_world):
        location = small_world.locations[0]
        assert small_world.location_by_id(location.location_id) is location
        with pytest.raises(KeyError):
            small_world.location_by_id("edge-Nowhere")

    def test_middle_pool_excludes_clients(self, small_world):
        pool = set(small_world.middle_asn_pool())
        assert not pool & set(small_world.population.asns)
        assert small_world.cloud_asn not in pool


class TestFaultFreeScenario:
    def test_no_culprit_without_faults(self, small_scenario, small_world):
        for slot in small_world.slots[:30]:
            culprit = small_scenario.true_culprit(
                slot.location.location_id, slot.client.prefix24, 100
            )
            assert culprit is None

    def test_true_rtt_matches_baseline(self, small_scenario, small_world):
        slot = small_world.slots[0]
        rtt = small_scenario.true_rtt_ms(
            slot.location.location_id, slot.client.prefix24, 50
        )
        baseline = small_scenario.baseline_latency(
            slot.location.location_id, slot.client.prefix24, 50
        )
        assert rtt == pytest.approx(baseline.total_ms)

    def test_traceroute_view_consistent_with_rtt(self, small_scenario, small_world):
        slot = small_world.slots[0]
        view = small_scenario.traceroute_view(
            slot.location.location_id, slot.client.prefix24, 50
        )
        rtt = small_scenario.true_rtt_ms(
            slot.location.location_id, slot.client.prefix24, 50
        )
        assert view.cumulative_ms[-1] == pytest.approx(rtt)
        assert list(view.cumulative_ms) == sorted(view.cumulative_ms)

    def test_quartets_well_formed(self, small_scenario, small_world):
        quartets = small_scenario.generate_quartets(150, np.random.default_rng(0))
        assert quartets
        locations = {l.location_id for l in small_world.locations}
        for quartet in quartets:
            assert quartet.location_id in locations
            assert quartet.n_samples >= 1
            assert quartet.mean_rtt_ms >= 1.0
            assert quartet.users >= 1
            path = small_scenario.path_for(
                quartet.location_id, quartet.prefix24, quartet.time
            )
            assert quartet.middle == middle_asns(path)

    def test_samples_aggregate_to_quartet_scale(self, small_scenario):
        samples = small_scenario.generate_samples(150, np.random.default_rng(1))
        assert samples
        # Spot-check: sample RTTs are positive and bucketed correctly.
        for sample in samples[:50]:
            assert sample.time == 150
            assert sample.rtt_ms > 0


class TestFaultEffects:
    def _scenario_with(self, world, fault) -> Scenario:
        return Scenario(world, (fault,), ())

    def test_cloud_fault_inflates_location_only(self, small_world):
        location = small_world.locations[0]
        other = small_world.locations[1]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.CLOUD, location_id=location.location_id),
            start=100,
            duration=10,
            added_ms=70.0,
        )
        scenario = self._scenario_with(small_world, fault)
        healthy = Scenario(small_world, (), ())
        for slot in small_world.slots:
            during = scenario.true_rtt_ms(
                slot.location.location_id, slot.client.prefix24, 105
            )
            clean = healthy.true_rtt_ms(
                slot.location.location_id, slot.client.prefix24, 105
            )
            if slot.location.location_id == location.location_id:
                assert during == pytest.approx(clean + 70.0)
            else:
                assert during == pytest.approx(clean)
        # And the oracle agrees.
        affected = next(
            s for s in small_world.slots
            if s.location.location_id == location.location_id
        )
        assert scenario.true_culprit(
            location.location_id, affected.client.prefix24, 105
        ) == (SegmentKind.CLOUD, small_world.cloud_asn)
        del other

    def test_middle_fault_shows_in_traceroute(self, small_world):
        # Find a slot with a non-empty middle.
        slot = next(
            s
            for s in small_world.slots
            if middle_asns(small_world.mapper.path_for(s.location, s.client) or (0, 0))
        )
        path = small_world.mapper.path_for(slot.location, slot.client)
        culprit = middle_asns(path)[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.MIDDLE, asn=culprit),
            start=100,
            duration=10,
            added_ms=50.0,
        )
        scenario = self._scenario_with(small_world, fault)
        healthy = Scenario(small_world, (), ())
        view = scenario.traceroute_view(
            slot.location.location_id, slot.client.prefix24, 105
        )
        clean = healthy.traceroute_view(
            slot.location.location_id, slot.client.prefix24, 105
        )
        position = view.path.index(culprit)
        delta = view.cumulative_ms[position] - clean.cumulative_ms[position]
        assert delta == pytest.approx(50.0)
        assert scenario.true_culprit(
            slot.location.location_id, slot.client.prefix24, 105
        ) == (SegmentKind.MIDDLE, culprit)

    def test_client_fault_oracle(self, small_world):
        asn = small_world.population.asns[0]
        client = small_world.population.in_as(asn)[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.CLIENT, asn=asn),
            start=100,
            duration=10,
            added_ms=60.0,
        )
        scenario = self._scenario_with(small_world, fault)
        location = small_world.assignments[client.prefix24].primary
        assert scenario.true_culprit(
            location.location_id, client.prefix24, 102
        ) == (SegmentKind.CLIENT, asn)

    def test_sub_threshold_fault_no_culprit(self, small_world):
        location = small_world.locations[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.CLOUD, location_id=location.location_id),
            start=100,
            duration=5,
            added_ms=5.0,  # below MIN_CULPRIT_DELTA_MS
        )
        scenario = self._scenario_with(small_world, fault)
        slot = next(
            s for s in small_world.slots
            if s.location.location_id == location.location_id
        )
        assert scenario.true_culprit(
            location.location_id, slot.client.prefix24, 102
        ) is None


class TestRerouting:
    def test_reroute_changes_path(self, small_world):
        slot = next(
            s
            for s in small_world.slots
            if small_world.mapper.alternate_path_for(s.location, s.client) is not None
        )
        base = small_world.mapper.path_for(slot.location, slot.client)
        alternate = small_world.mapper.alternate_path_for(slot.location, slot.client)
        event = RerouteEvent(
            time=50,
            location_id=slot.location.location_id,
            announcement=slot.client.announcement,
            new_path=alternate,
        )
        scenario = Scenario(small_world, (), (event,))
        assert (
            scenario.path_for(slot.location.location_id, slot.client.prefix24, 49)
            == base
        )
        assert (
            scenario.path_for(slot.location.location_id, slot.client.prefix24, 50)
            == alternate
        )

    def test_withdrawal_makes_unreachable(self, small_world):
        slot = small_world.slots[0]
        event = RerouteEvent(
            time=50,
            location_id=slot.location.location_id,
            announcement=slot.client.announcement,
            new_path=None,
        )
        scenario = Scenario(small_world, (), (event,))
        assert (
            scenario.path_for(slot.location.location_id, slot.client.prefix24, 55)
            is None
        )
        assert (
            scenario.true_rtt_ms(slot.location.location_id, slot.client.prefix24, 55)
            is None
        )
        assert (
            scenario.traceroute_view(
                slot.location.location_id, slot.client.prefix24, 55
            )
            is None
        )

    def test_reroute_logged_as_bgp_update(self, small_world):
        slot = next(
            s
            for s in small_world.slots
            if small_world.mapper.alternate_path_for(s.location, s.client) is not None
        )
        alternate = small_world.mapper.alternate_path_for(slot.location, slot.client)
        event = RerouteEvent(
            time=50,
            location_id=slot.location.location_id,
            announcement=slot.client.announcement,
            new_path=alternate,
        )
        scenario = Scenario(small_world, (), (event,))
        updates = scenario.updates_between(50, 51)
        assert len(updates) == 1
        assert updates[0].new_path == alternate

    def test_initial_installs_not_reported_as_churn(self, small_scenario):
        assert small_scenario.updates_between(0, 1) == ()


class TestDeterminism:
    def test_same_seed_same_world(self):
        params = ScenarioParams(
            seed=99, regions=(Region.USA,), duration_days=1, locations_per_region=1
        )
        a = Scenario.build(params)
        b = Scenario.build(params)
        assert len(a.world.slots) == len(b.world.slots)
        assert a.faults == b.faults
        qa = a.generate_quartets(100, np.random.default_rng(0))
        qb = b.generate_quartets(100, np.random.default_rng(0))
        assert qa == qb

    def test_horizon(self):
        params = ScenarioParams(seed=1, regions=(Region.USA,), duration_days=3)
        assert params.horizon_buckets == 3 * BUCKETS_PER_DAY
