"""Tests for repro.io: scenario and report (de)serialization."""

import json

import numpy as np
import pytest

from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.io import (
    load_report,
    load_scenario,
    params_from_dict,
    params_to_dict,
    report_from_dict,
    report_to_dict,
    save_report,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.net.geo import Region
from repro.sim.faults import Direction, Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario, ScenarioParams


@pytest.fixture(scope="module")
def params():
    return ScenarioParams(
        seed=13,
        regions=(Region.USA, Region.BRAZIL),
        duration_days=1,
        locations_per_region=1,
        rings=2,
    )


class TestParamsRoundTrip:
    def test_round_trip_equality(self, params):
        assert params_from_dict(params_to_dict(params)) == params

    def test_dict_is_json_compatible(self, params):
        json.dumps(params_to_dict(params))  # must not raise

    def test_defaults_round_trip(self):
        params = ScenarioParams()
        assert params_from_dict(params_to_dict(params)) == params


class TestScenarioRoundTrip:
    @pytest.fixture(scope="class")
    def scenario(self, params):
        from repro.sim.scenario import build_world

        world = build_world(params)
        faults = (
            Fault(
                fault_id=0,
                target=FaultTarget(
                    kind=SegmentKind.CLOUD,
                    location_id=world.locations[0].location_id,
                    affected_fraction=0.7,
                ),
                start=100,
                duration=10,
                added_ms=70.0,
            ),
            Fault(
                fault_id=1,
                target=FaultTarget(
                    kind=SegmentKind.MIDDLE,
                    asn=world.middle_asn_pool()[0],
                    direction=Direction.REVERSE,
                    path_scope=(world.middle_asn_pool()[0],),
                ),
                start=120,
                duration=6,
                added_ms=50.0,
            ),
        )
        return Scenario(world, faults, ())

    def test_round_trip_preserves_faults(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.faults == scenario.faults
        assert rebuilt.reroutes == scenario.reroutes

    def test_round_trip_reproduces_world(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert len(rebuilt.world.slots) == len(scenario.world.slots)
        original = scenario.generate_quartets(105, np.random.default_rng(0))
        again = rebuilt.generate_quartets(105, np.random.default_rng(0))
        assert original == again

    def test_file_round_trip(self, scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(scenario, path)
        rebuilt = load_scenario(path)
        assert rebuilt.faults == scenario.faults

    def test_version_check(self, scenario):
        data = scenario_to_dict(scenario)
        data["format_version"] = 999
        with pytest.raises(ValueError):
            scenario_from_dict(data)

    def test_generated_churn_round_trips(self, params):
        scenario = Scenario.build(params)
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.reroutes == scenario.reroutes
        assert len(rebuilt.listener.log) == len(scenario.listener.log)


class TestReportSerialization:
    @pytest.fixture(scope="class")
    def report(self, params):
        scenario = Scenario.build(params)
        pipeline = BlameItPipeline(scenario, config=BlameItConfig(history_days=1))
        pipeline.warmup(0, 96, stride=4)
        return pipeline.run(100, 140)

    def test_report_summary(self, report, tmp_path):
        data = report_to_dict(report)
        json.dumps(data)  # JSON-compatible
        assert data["window"] == [100, 140]
        assert data["total_quartets"] == report.total_quartets
        assert set(data["probes"]) == {
            "on_demand",
            "background",
            "churn_triggered",
            "bootstrap",
        }
        path = tmp_path / "report.json"
        save_report(report, path)
        assert json.loads(path.read_text())["window"] == [100, 140]

    def test_report_dict_round_trip(self, report):
        data = report_to_dict(report)
        summary = report_from_dict(data)
        assert summary.window == (100, 140)
        assert summary.total_quartets == report.total_quartets
        # The round trip is lossless: serializing the parsed summary
        # reproduces the original document exactly.
        assert summary.to_dict() == data

    def test_report_file_round_trip(self, report, tmp_path):
        path = tmp_path / "report.json"
        save_report(report, path)
        summary = load_report(path)
        assert summary.to_dict() == report_to_dict(report)

    def test_report_version_check(self, report):
        data = report_to_dict(report)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="unsupported report format"):
            report_from_dict(data)

    def test_report_malformed_document(self, report):
        data = report_to_dict(report)
        del data["probes"]
        with pytest.raises(ValueError, match="malformed report document"):
            report_from_dict(data)
