"""Tests for repro.analysis.cdf: ECDF and KS statistic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.cdf import ECDF, ks_two_sample

_SAMPLES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestECDF:
    def test_basic_evaluation(self):
        ecdf = ECDF([1.0, 2.0, 3.0, 4.0])
        assert ecdf(0.5) == 0.0
        assert ecdf(1.0) == 0.25
        assert ecdf(2.5) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf(100.0) == 1.0

    def test_quantiles(self):
        ecdf = ECDF([10.0, 20.0, 30.0, 40.0])
        assert ecdf.quantile(0.25) == 10.0
        assert ecdf.quantile(0.5) == 20.0
        assert ecdf.quantile(1.0) == 40.0
        with pytest.raises(ValueError):
            ecdf.quantile(0.0)
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_summary_grid(self):
        ecdf = ECDF([1.0, 2.0])
        summary = ecdf.summary([0.0, 1.5, 3.0])
        assert summary == [(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ECDF([])

    def test_stats(self):
        ecdf = ECDF([3.0, 1.0, 2.0])
        assert ecdf.min == 1.0
        assert ecdf.max == 3.0
        assert ecdf.mean() == pytest.approx(2.0)
        assert ecdf.n == 3

    @given(values=_SAMPLES)
    def test_monotone_between_zero_and_one(self, values):
        ecdf = ECDF(values)
        grid = sorted(set(values))
        evaluations = [ecdf(x) for x in grid]
        assert all(0.0 <= v <= 1.0 for v in evaluations)
        assert all(a <= b for a, b in zip(evaluations, evaluations[1:]))
        assert evaluations[-1] == 1.0

    @given(values=_SAMPLES, q=st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_inverts_cdf(self, values, q):
        ecdf = ECDF(values)
        x = ecdf.quantile(q)
        assert ecdf(x) >= q - 1e-12


class TestKSTwoSample:
    def test_identical_samples_zero(self):
        assert ks_two_sample([1, 2, 3], [1, 2, 3]) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_two_sample([1, 2], [10, 20]) == 1.0

    def test_known_value(self):
        # a = {1,2,3,4}; b = {3,4,5,6}: max gap at x in [2,3) is 0.5.
        assert ks_two_sample([1, 2, 3, 4], [3, 4, 5, 6]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])

    @given(a=_SAMPLES, b=_SAMPLES)
    def test_bounded_and_symmetric(self, a, b):
        stat = ks_two_sample(a, b)
        assert 0.0 <= stat <= 1.0
        assert stat == pytest.approx(ks_two_sample(b, a))

    @given(a=_SAMPLES)
    def test_split_halves_small_statistic(self, a):
        """§2.1 sanity check shape: same-distribution splits give small
        KS statistics for large n (here: identical samples give 0)."""
        assert ks_two_sample(a, list(a)) == 0.0
