"""Golden end-to-end regression test.

A small fixed scenario's full ``report_to_dict`` digest is checked in at
``tests/golden/pipeline_report.json``. Any behavioral drift anywhere in
the pipeline — generation, Algorithm 1, tracking, probing, localization,
alerting, serialization — fails this test loudly, with a unified diff of
the JSON so the drift is visible at a glance.

The golden file was generated from the pre-``repro.chaos`` pipeline, so
it also proves the chaos subsystem's no-op guarantee: with no
``FaultPlan``, today's reports are byte-identical to the pre-chaos ones.

Regenerate (only after an *intentional* behavior change)::

    PYTHONPATH=src:tests python -m test_golden
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline, PipelineReport
from repro.core.thresholds import ExpectedRTTLearner
from repro.io import report_to_dict
from repro.net.geo import Region
from repro.sim.scenario import Scenario, ScenarioParams, build_world

GOLDEN_PATH = Path(__file__).parent / "golden" / "pipeline_report.json"

#: The fixed scenario (mirrors the ``small_world`` fixture so tests can
#: reuse the session-scoped world instead of rebuilding it).
GOLDEN_PARAMS = ScenarioParams(
    seed=42,
    regions=(Region.USA, Region.EUROPE),
    locations_per_region=2,
    duration_days=1,
)
GOLDEN_SEED = 11
GOLDEN_RANGE = (100, 160)


def build_golden_report(world=None) -> PipelineReport:
    """Run the fixed golden scenario and return its report."""
    world = world or build_world(GOLDEN_PARAMS)
    scenario = Scenario.from_world(world)
    config = BlameItConfig(history_days=1, background_interval_buckets=36)
    learner = ExpectedRTTLearner(history_days=1)
    trainer = BlameItPipeline(scenario, config=config, learner=learner)
    trainer.warmup(0, 96, stride=4)
    pipeline = BlameItPipeline(
        scenario,
        config=config,
        fixed_table=learner.table(),
        seed=GOLDEN_SEED,
        rng_per_bucket=True,
    )
    return pipeline.run(*GOLDEN_RANGE)


def canonical_json(report: PipelineReport) -> str:
    """The report as deterministic, diff-friendly JSON."""
    return json.dumps(report_to_dict(report), indent=2, sort_keys=True) + "\n"


def golden_diff(expected: str, got: str) -> str:
    """A unified diff between the golden digest and a fresh run's."""
    return "".join(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            got.splitlines(keepends=True),
            fromfile="tests/golden/pipeline_report.json",
            tofile="current run",
            n=3,
        )
    )


class TestGoldenReport:
    def test_report_matches_golden(self, small_world):
        assert GOLDEN_PATH.exists(), (
            "golden file missing; regenerate with "
            "`PYTHONPATH=src:tests python -m test_golden`"
        )
        got = canonical_json(build_golden_report(small_world))
        expected = GOLDEN_PATH.read_text(encoding="utf-8")
        if got != expected:
            diff = golden_diff(expected, got)
            raise AssertionError(
                "pipeline output drifted from the golden report; if the "
                "change is intentional, regenerate with "
                "`PYTHONPATH=src:tests python -m test_golden`\n" + diff
            )

    def test_golden_digest_is_nontrivial(self):
        digest = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert digest["total_quartets"] > 0
        assert sum(digest["blame_counts"].values()) > 0


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(canonical_json(build_golden_report()), encoding="utf-8")
    print(f"golden report written to {GOLDEN_PATH}")
