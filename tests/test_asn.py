"""Tests for repro.net.asn."""

import pytest

from repro.net.asn import ASTier, AutonomousSystem, middle_asns


class TestAutonomousSystem:
    def test_str(self):
        asys = AutonomousSystem(64512, "TestNet", ASTier.ACCESS)
        assert str(asys) == "AS64512(TestNet)"

    def test_rejects_nonpositive_asn(self):
        with pytest.raises(ValueError):
            AutonomousSystem(0, "zero", ASTier.ACCESS)
        with pytest.raises(ValueError):
            AutonomousSystem(-3, "neg", ASTier.ACCESS)

    def test_defaults(self):
        asys = AutonomousSystem(1, "x", ASTier.TIER1)
        assert asys.metros == ()
        assert asys.enterprise is False

    def test_hashable(self):
        a = AutonomousSystem(1, "x", ASTier.TIER1)
        b = AutonomousSystem(1, "x", ASTier.TIER1)
        assert a == b
        assert {a, b} == {a}


class TestMiddleASNs:
    def test_strips_endpoints(self):
        assert middle_asns((1, 10, 20, 30)) == (10, 20)

    def test_direct_adjacency_empty_middle(self):
        assert middle_asns((1, 30)) == ()

    def test_single_hop_middle(self):
        assert middle_asns((1, 10, 30)) == (10,)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            middle_asns((1,))
        with pytest.raises(ValueError):
            middle_asns(())
