"""Tests for repro.core.grouping: middle-segment grouping strategies."""

import pytest

from repro.core.grouping import (
    GroupingStrategy,
    consistent_path_fraction,
    group_key,
    sharing_counts,
)
from repro.core.quartet import Quartet
from repro.net.geo import Region


def _quartet(prefix=1, middle=(10, 20), asn=65000, loc="edge-A") -> Quartet:
    return Quartet(
        time=0,
        prefix24=prefix,
        location_id=loc,
        mobile=False,
        mean_rtt_ms=40.0,
        n_samples=15,
        users=10,
        client_asn=asn,
        middle=middle,
        region=Region.USA,
    )


class TestGroupKey:
    def test_bgp_path_pools_across_origins(self):
        a = group_key(GroupingStrategy.BGP_PATH, _quartet(asn=65000))
        b = group_key(GroupingStrategy.BGP_PATH, _quartet(asn=65001))
        assert a == b

    def test_bgp_atom_separates_origins(self):
        a = group_key(GroupingStrategy.BGP_ATOM, _quartet(asn=65000))
        b = group_key(GroupingStrategy.BGP_ATOM, _quartet(asn=65001))
        assert a != b

    def test_bgp_prefix_needs_announcement(self):
        with pytest.raises(ValueError):
            group_key(GroupingStrategy.BGP_PREFIX, _quartet())
        key = group_key(GroupingStrategy.BGP_PREFIX, _quartet(), announcement="10/22")
        assert key == ("edge-A", "10/22")

    def test_as_metro_needs_metro(self):
        with pytest.raises(ValueError):
            group_key(GroupingStrategy.AS_METRO, _quartet())
        key = group_key(GroupingStrategy.AS_METRO, _quartet(), metro_name="Chicago")
        assert key == (65000, "Chicago")

    def test_locations_separate_paths(self):
        a = group_key(GroupingStrategy.BGP_PATH, _quartet(loc="edge-A"))
        b = group_key(GroupingStrategy.BGP_PATH, _quartet(loc="edge-B"))
        assert a != b


class TestSharingCounts:
    def test_granularity_ordering(self):
        """Coarser grouping → more sharers (the Figure 6 ordering)."""
        quartets = [
            _quartet(prefix=1, middle=(10, 20), asn=65000),
            _quartet(prefix=2, middle=(10, 20), asn=65000),
            _quartet(prefix=3, middle=(10, 20), asn=65001),
            _quartet(prefix=4, middle=(10, 21), asn=65002),
        ]
        announcements = {1: "A", 2: "B", 3: "C", 4: "D"}
        path_keys = {
            q.prefix24: group_key(GroupingStrategy.BGP_PATH, q) for q in quartets
        }
        atom_keys = {
            q.prefix24: group_key(GroupingStrategy.BGP_ATOM, q) for q in quartets
        }
        prefix_keys = {
            q.prefix24: group_key(
                GroupingStrategy.BGP_PREFIX, q, announcement=announcements[q.prefix24]
            )
            for q in quartets
        }
        path_share = sharing_counts(path_keys)
        atom_share = sharing_counts(atom_keys)
        prefix_share = sharing_counts(prefix_keys)
        for prefix in (1, 2, 3, 4):
            assert prefix_share[prefix] <= atom_share[prefix] <= path_share[prefix]
        assert path_share[1] == 2  # prefixes 2 and 3 share its middle
        assert atom_share[1] == 1  # only prefix 2 shares middle + origin

    def test_singleton(self):
        counts = sharing_counts({1: "k"})
        assert counts == {1: 0}


class TestConsistentPathFraction:
    def test_mixed_groups(self):
        groups = {
            "g1": {(10, 20)},
            "g2": {(10, 20), (11, 20)},
            "g3": {(12,)},
            "g4": {(10,), (11,), (12,)},
        }
        assert consistent_path_fraction(groups) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consistent_path_fraction({})
