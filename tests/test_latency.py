"""Tests for repro.net.latency: the per-segment latency model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.geo import metro_by_name
from repro.net.latency import LatencyModel, LatencyParams, PathLatency


class TestPathLatency:
    def test_total_is_sum(self):
        latency = PathLatency(cloud_ms=2.0, middle_ms=(10.0, 5.0), client_ms=8.0)
        assert latency.total_ms == pytest.approx(25.0)

    def test_cumulative_shape_and_monotonicity(self):
        latency = PathLatency(cloud_ms=4.0, middle_ms=(2.0, 2.0), client_ms=1.0)
        cumulative = latency.cumulative_ms()
        assert cumulative == pytest.approx((4.0, 6.0, 8.0, 9.0))
        assert list(cumulative) == sorted(cumulative)

    def test_paper_worked_example(self):
        """§5.2: X - m1 - m2 - c with cumulative (4, 6, 8, 9)."""
        latency = PathLatency(cloud_ms=4.0, middle_ms=(2.0, 2.0), client_ms=1.0)
        assert latency.cumulative_ms() == pytest.approx((4.0, 6.0, 8.0, 9.0))

    def test_empty_middle(self):
        latency = PathLatency(cloud_ms=3.0, middle_ms=(), client_ms=5.0)
        assert latency.cumulative_ms() == pytest.approx((3.0, 8.0))


class TestLatencyModel:
    @pytest.fixture
    def model(self):
        return LatencyModel()

    def test_stable_across_calls(self, model):
        seattle = metro_by_name("Seattle")
        london = metro_by_name("London")
        path = (1, 10, 20, 30)
        first = model.path_latency(seattle, path, london)
        second = model.path_latency(seattle, path, london)
        assert first == second

    def test_distinct_paths_get_distinct_latencies(self, model):
        seattle = metro_by_name("Seattle")
        london = metro_by_name("London")
        a = model.path_latency(seattle, (1, 10, 30), london)
        b = model.path_latency(seattle, (1, 11, 30), london)
        assert a.total_ms != pytest.approx(b.total_ms)

    def test_middle_carries_propagation(self, model):
        """Long geographic paths must show up in the middle segment."""
        seattle = metro_by_name("Seattle")
        sydney = metro_by_name("Sydney")
        chicago = metro_by_name("Chicago")
        path = (1, 10, 20, 30)
        far = model.path_latency(seattle, path, sydney)
        near = model.path_latency(seattle, path, chicago)
        assert sum(far.middle_ms) > sum(near.middle_ms)
        assert far.total_ms > near.total_ms

    def test_mobile_adds_client_latency(self, model):
        seattle = metro_by_name("Seattle")
        chicago = metro_by_name("Chicago")
        path = (1, 10, 30)
        fixed = model.path_latency(seattle, path, chicago, mobile=False)
        mobile = model.path_latency(seattle, path, chicago, mobile=True)
        assert mobile.client_ms > fixed.client_ms
        assert mobile.client_ms - fixed.client_ms == pytest.approx(
            model.params.client_mobile_extra_ms
        )

    def test_direct_adjacency_propagation_in_client(self, model):
        seattle = metro_by_name("Seattle")
        london = metro_by_name("London")
        direct = model.path_latency(seattle, (1, 30), london)
        assert direct.middle_ms == ()
        # Transatlantic propagation must land somewhere: the client leg.
        assert direct.client_ms > 60

    def test_segment_positivity(self, model):
        seattle = metro_by_name("Seattle")
        tokyo = metro_by_name("Tokyo")
        latency = model.path_latency(seattle, (1, 10, 20, 21, 30), tokyo)
        assert latency.cloud_ms > 0
        assert latency.client_ms > 0
        assert all(ms > 0 for ms in latency.middle_ms)


class TestSampling:
    def test_noise_centering(self):
        model = LatencyModel(LatencyParams(noise_sigma=0.05))
        rng = np.random.default_rng(0)
        samples = model.sample_rtt(100.0, rng, n=5000)
        assert samples.mean() == pytest.approx(100.0, rel=0.02)

    def test_zero_sigma_is_deterministic(self):
        model = LatencyModel(LatencyParams(noise_sigma=0.0))
        rng = np.random.default_rng(0)
        samples = model.sample_rtt(50.0, rng, n=10)
        assert (samples == 50.0).all()

    def test_floor(self):
        model = LatencyModel(LatencyParams(noise_sigma=2.0, min_rtt_ms=1.0))
        rng = np.random.default_rng(0)
        samples = model.sample_rtt(1.0, rng, n=1000)
        assert (samples >= 1.0).all()

    def test_negative_baseline_rejected(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.sample_rtt(-5.0, np.random.default_rng(0))

    @given(baseline=st.floats(min_value=1.0, max_value=500.0))
    def test_samples_positive(self, baseline):
        model = LatencyModel()
        rng = np.random.default_rng(1)
        samples = model.sample_rtt(baseline, rng, n=16)
        assert (samples > 0).all()
