"""Tests for repro.analysis.characterize: §2 measurement analyses."""

import pytest

from repro.analysis.characterize import (
    PersistenceTracker,
    bad_fraction_by_hour,
    bad_fraction_by_region,
    impact_records_from_issues,
)
from repro.cloud.locations import RTTTargets
from repro.core.quartet import Quartet
from repro.net.geo import Region


def _targets() -> RTTTargets:
    return RTTTargets(
        by_region={Region.USA: (50.0, 80.0), Region.EUROPE: (60.0, 90.0)}
    )


def _quartet(
    time=0, prefix=1, rtt=40.0, region=Region.USA, mobile=False, n=15, middle=(10,),
    users=10, loc="edge-A",
) -> Quartet:
    return Quartet(
        time=time,
        prefix24=prefix,
        location_id=loc,
        mobile=mobile,
        mean_rtt_ms=rtt,
        n_samples=n,
        users=users,
        client_asn=65000,
        middle=middle,
        region=region,
    )


class TestBadFractionByRegion:
    def test_fraction_computed_per_region_and_mobility(self):
        stream = [
            [
                _quartet(rtt=100.0),  # USA fixed bad
                _quartet(prefix=2, rtt=10.0),  # USA fixed good
                _quartet(prefix=3, rtt=70.0, mobile=True),  # USA mobile good
                _quartet(prefix=4, rtt=100.0, region=Region.EUROPE),  # EU bad
            ]
        ]
        fractions = bad_fraction_by_region(stream, _targets())
        assert fractions[(Region.USA, False)] == pytest.approx(0.5)
        assert fractions[(Region.USA, True)] == 0.0
        assert fractions[(Region.EUROPE, False)] == 1.0

    def test_sample_gate(self):
        stream = [[_quartet(rtt=100.0, n=5)]]
        assert bad_fraction_by_region(stream, _targets()) == {}


class TestBadFractionByHour:
    def test_hour_bucketing(self):
        stream = [
            (0, [_quartet(time=0, rtt=100.0), _quartet(time=0, prefix=2, rtt=10.0)]),
            (12, [_quartet(time=12, rtt=10.0)]),
        ]
        by_hour = bad_fraction_by_hour(stream, _targets())
        assert by_hour[0] == pytest.approx(0.5)
        assert by_hour[1] == 0.0

    def test_isp_filter(self):
        stream = [(0, [_quartet(rtt=100.0)])]
        assert bad_fraction_by_hour(stream, _targets(), client_asn=999) == {}
        assert bad_fraction_by_hour(stream, _targets(), client_asn=65000)[0] == 1.0


class TestPersistenceTracker:
    def test_consecutive_run_counted(self):
        tracker = PersistenceTracker()
        key = (1, "edge-A", False)
        for time in range(5):
            tracker.observe_bucket(time, {key})
        tracker.observe_bucket(5, set())
        assert tracker.completed_runs == [5]

    def test_gap_splits_runs(self):
        tracker = PersistenceTracker()
        key = (1, "edge-A", False)
        tracker.observe_bucket(0, {key})
        tracker.observe_bucket(1, {key})
        tracker.observe_bucket(2, set())
        tracker.observe_bucket(3, {key})
        runs = tracker.finish()
        assert sorted(runs) == [1, 2]

    def test_parallel_keys_independent(self):
        tracker = PersistenceTracker()
        a = (1, "edge-A", False)
        b = (2, "edge-A", False)
        tracker.observe_bucket(0, {a, b})
        tracker.observe_bucket(1, {a})
        runs = tracker.finish()
        assert sorted(runs) == [1, 2]

    def test_bad_keys_helper(self):
        quartets = [
            _quartet(rtt=100.0),
            _quartet(prefix=2, rtt=10.0),
            _quartet(prefix=3, rtt=100.0, n=4),  # gated out
        ]
        keys = PersistenceTracker.bad_keys(quartets, _targets())
        assert keys == {(1, "edge-A", False)}


class TestImpactRecords:
    def test_aggregation(self):
        stream = [
            (0, [_quartet(rtt=100.0, prefix=1, users=10)]),
            (1, [_quartet(time=1, rtt=100.0, prefix=1, users=10)]),
            (1, [_quartet(time=1, rtt=100.0, prefix=2, users=30)]),
            (2, [_quartet(time=2, rtt=10.0, prefix=3, users=99)]),  # good
        ]
        records = impact_records_from_issues(stream, _targets())
        assert len(records) == 1
        record = records[0]
        assert record.key == ("edge-A", (10,))
        assert record.affected_prefixes == 2
        assert record.affected_clients == 40
        assert record.duration_buckets == 2
        assert record.impact == pytest.approx(80.0)

    def test_separate_keys(self):
        stream = [
            (0, [
                _quartet(rtt=100.0, middle=(10,)),
                _quartet(prefix=2, rtt=100.0, middle=(11,)),
            ])
        ]
        records = impact_records_from_issues(stream, _targets())
        assert len(records) == 2


class TestBadFractionByLocation:
    def test_per_location_split(self):
        stream = [
            [
                _quartet(rtt=100.0, loc="edge-A"),
                _quartet(prefix=2, rtt=10.0, loc="edge-A"),
                _quartet(prefix=3, rtt=10.0, loc="edge-B"),
            ]
        ]
        from repro.analysis.characterize import bad_fraction_by_location

        fractions = bad_fraction_by_location(stream, _targets())
        assert fractions["edge-A"] == pytest.approx(0.5)
        assert fractions["edge-B"] == 0.0

    def test_gate_applies(self):
        from repro.analysis.characterize import bad_fraction_by_location

        stream = [[_quartet(rtt=100.0, n=3)]]
        assert bad_fraction_by_location(stream, _targets()) == {}
