"""Integration tests for repro.core.pipeline over small scenarios."""

import pytest

from repro.core.blame import Blame, BlameResult
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline, _KeyedIssueTracker
from repro.core.quartet import Quartet
from repro.net.asn import middle_asns
from repro.net.geo import Region
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario


def _fast_config(**overrides) -> BlameItConfig:
    defaults = dict(history_days=1, background_interval_buckets=36)
    defaults.update(overrides)
    return BlameItConfig(**defaults)


@pytest.fixture(scope="module")
def warm_pipeline_report(small_world):
    """One pipeline run over a scenario with a known cloud fault."""
    location = small_world.locations[0]
    fault = Fault(
        fault_id=0,
        target=FaultTarget(kind=SegmentKind.CLOUD, location_id=location.location_id),
        start=180,
        duration=12,
        added_ms=80.0,
    )
    scenario = Scenario(small_world, (fault,), ())
    pipeline = BlameItPipeline(scenario, config=_fast_config())
    pipeline.warmup(0, 144, stride=3)
    report = pipeline.run(150, 220)
    return location, report


class TestCloudFaultRun:
    def test_cloud_blames_dominate(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        assert report.blame_counts.get(Blame.CLOUD, 0) > 0
        fractions = report.blame_fractions()
        assert fractions[Blame.CLOUD] == max(
            fractions[b] for b in (Blame.CLOUD, Blame.MIDDLE, Blame.CLIENT)
        )

    def test_cloud_issue_tracked(self, warm_pipeline_report):
        location, report = warm_pipeline_report
        assert any(
            issue.key == location.location_id for issue in report.closed_cloud
        )

    def test_alert_emitted_for_fault(self, warm_pipeline_report):
        location, report = warm_pipeline_report
        cloud_alerts = [a for a in report.alerts if a.blame is Blame.CLOUD]
        assert cloud_alerts
        assert cloud_alerts[0].location_id == location.location_id
        assert cloud_alerts[0].culprit_asn == 8075

    def test_quartet_accounting(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        assert report.total_quartets > 0
        assert 0 < report.bad_quartets <= report.total_quartets

    def test_probe_accounting_consistent(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        assert report.probes_total == (
            report.probes_on_demand + report.probes_background + report.probes_bootstrap
        )
        assert report.probes_bootstrap > 0

    def test_durations_by_category_structure(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        durations = report.durations_by_category()
        assert set(durations) == {Blame.CLOUD, Blame.MIDDLE, Blame.CLIENT}
        assert all(d >= 1 for ds in durations.values() for d in ds)


class TestMiddleFaultRun:
    def test_middle_issue_localized_to_faulty_as(self, small_world):
        slot = next(
            s
            for s in small_world.slots
            if len(middle_asns(small_world.mapper.path_for(s.location, s.client) or (0, 0))) >= 1
        )
        path = small_world.mapper.path_for(slot.location, slot.client)
        culprit = middle_asns(path)[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.MIDDLE, asn=culprit),
            start=180,
            duration=12,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        pipeline = BlameItPipeline(scenario, config=_fast_config())
        pipeline.warmup(0, 144, stride=3)
        report = pipeline.run(150, 210)
        verdicts = [
            item.verdict.asn
            for item in report.localized
            if item.verdict is not None and item.verdict.asn is not None
        ]
        assert culprit in verdicts

    def test_budget_zero_disables_on_demand(self, small_world):
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.MIDDLE, asn=small_world.middle_asn_pool()[0]
            ),
            start=180,
            duration=12,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        pipeline = BlameItPipeline(
            scenario, config=_fast_config(probe_budget_per_window=0)
        )
        pipeline.warmup(0, 72, stride=3)
        report = pipeline.run(150, 200)
        assert report.probes_on_demand == 0
        assert report.localized == []


class TestFixedTable:
    def test_fixed_table_skips_learning(self, small_world):
        scenario = Scenario(small_world, (), ())
        trainer = BlameItPipeline(scenario, config=_fast_config())
        trainer.warmup(0, 144, stride=3)
        table = trainer.learner.table()
        pipeline = BlameItPipeline(scenario, config=_fast_config(), fixed_table=table)
        report = pipeline.run(150, 165)
        assert report.total_quartets > 0
        # The internal learner never saw anything.
        assert pipeline.learner.table().cloud == {}


class TestHealthyRun:
    def test_no_faults_low_badness(self, small_world):
        scenario = Scenario(small_world, (), ())
        pipeline = BlameItPipeline(scenario, config=_fast_config())
        pipeline.warmup(0, 144, stride=3)
        report = pipeline.run(150, 200)
        assert report.bad_quartets <= report.total_quartets * 0.05
        assert report.probes_on_demand <= 5


class TestKeyedTrackerGapSemantics:
    """Run stitching for cloud/client blames: sweep and displacement must
    close a run under the same gap condition."""

    CLOUD_ASN = 8075

    def _result(self, asn=65001, time=0, loc="edge-A"):
        quartet = Quartet(
            time=time,
            prefix24=7,
            location_id=loc,
            mobile=False,
            mean_rtt_ms=90.0,
            n_samples=20,
            users=10,
            client_asn=asn,
            middle=(10,),
            region=Region.USA,
        )
        return BlameResult(quartet, Blame.CLIENT, 0.1, 0.1)

    def _tracker(self) -> _KeyedIssueTracker:
        return _KeyedIssueTracker(Blame.CLIENT, gap_buckets=1)

    def test_blame_within_gap_extends_run(self):
        """A one-bucket gap (== gap_buckets) does not end the run."""
        tracker = self._tracker()
        tracker.update(0, [self._result(time=0)], self.CLOUD_ASN)
        closed = tracker.update(1, [self._result(time=1)], self.CLOUD_ASN)
        assert closed == []
        (issue,) = tracker.open.values()
        assert issue.first_seen == 0
        assert issue.last_seen == 1

    def test_sweep_closes_after_gap(self):
        """An end-of-bucket sweep with no matching blame closes the run
        once more than gap_buckets buckets passed."""
        tracker = self._tracker()
        tracker.update(0, [self._result(time=0)], self.CLOUD_ASN)
        assert tracker.update(1, [], self.CLOUD_ASN) == []
        closed = tracker.update(2, [], self.CLOUD_ASN)
        assert len(closed) == 1
        assert closed[0].first_seen == 0
        assert tracker.open == {}

    def test_displacement_agrees_with_sweep(self):
        """A fresh blame arriving just past the gap starts a *new* run —
        under the same `> gap_buckets` condition the sweep uses (update
        may not have run for the quiet buckets in between)."""
        tracker = self._tracker()
        tracker.update(0, [self._result(time=0)], self.CLOUD_ASN)
        closed = tracker.update(2, [self._result(time=2)], self.CLOUD_ASN)
        assert len(closed) == 1
        assert closed[0].first_seen == 0
        assert closed[0].last_seen == 0
        (issue,) = tracker.open.values()
        assert issue.first_seen == 2

    def test_update_returns_only_newly_closed(self):
        """Earlier closures must not be re-reported by later updates."""
        tracker = self._tracker()
        tracker.update(0, [self._result(asn=65001, time=0)], self.CLOUD_ASN)
        first = tracker.update(2, [], self.CLOUD_ASN)
        assert len(first) == 1
        tracker.update(10, [self._result(asn=65002, time=10)], self.CLOUD_ASN)
        later = tracker.update(13, [], self.CLOUD_ASN)
        assert len(later) == 1
        assert later[0].key == 65002
        assert len(tracker.closed) == 2

    def test_independent_keys_tracked_separately(self):
        tracker = self._tracker()
        tracker.update(
            0,
            [self._result(asn=65001, time=0), self._result(asn=65002, time=0)],
            self.CLOUD_ASN,
        )
        closed = tracker.update(2, [self._result(asn=65001, time=2)], self.CLOUD_ASN)
        # Both runs ended: 65001 displaced, 65002 swept.
        assert {issue.key for issue in closed} == {65001, 65002}



class TestKeyedTrackerVoteAccounting:
    """The end-of-bucket sweep must run before the bucket's co-located
    vote totals are credited."""

    CLOUD_ASN = 8075

    def _quartet(self, time=0):
        return Quartet(
            time=time,
            prefix24=7,
            location_id="edge-A",
            mobile=False,
            mean_rtt_ms=90.0,
            n_samples=20,
            users=10,
            client_asn=65001,
            middle=(10,),
            region=Region.USA,
        )

    def test_swept_issue_confidence_undiluted(self):
        """A key recurring past the gap under a different blame category
        contributes votes_total — but not to the already-over run."""
        tracker = _KeyedIssueTracker(Blame.CLIENT, gap_buckets=1)
        tracker.update(
            0,
            [BlameResult(self._quartet(time=0), Blame.CLIENT, 0.1, 0.1)],
            self.CLOUD_ASN,
        )
        ambiguous = BlameResult(self._quartet(time=3), Blame.AMBIGUOUS, 0.1, 0.1)
        closed = tracker.update(3, [ambiguous], self.CLOUD_ASN)
        assert len(closed) == 1
        assert closed[0].votes_for == 1
        assert closed[0].votes_total == 1
        assert closed[0].confidence == 1.0

    def test_displaced_run_credits_new_issue(self):
        """Displacement still credits the current bucket's votes to the
        *new* run it opens."""
        tracker = _KeyedIssueTracker(Blame.CLIENT, gap_buckets=1)
        tracker.update(
            0,
            [BlameResult(self._quartet(time=0), Blame.CLIENT, 0.1, 0.1)],
            self.CLOUD_ASN,
        )
        closed = tracker.update(
            3,
            [BlameResult(self._quartet(time=3), Blame.CLIENT, 0.1, 0.1)],
            self.CLOUD_ASN,
        )
        assert len(closed) == 1
        assert closed[0].votes_total == 1  # only its own bucket's votes
        (issue,) = tracker.open.values()
        assert issue.votes_for == 1
        assert issue.votes_total == 1


class TestLocalizeBaselineDedup:
    """`_localize` must not compare the same baseline twice when only a
    single candidate exists."""

    def _probe_setup(self, small_scenario):
        from repro.core.active import ProbedIssue

        pipeline = BlameItPipeline(small_scenario, config=_fast_config())
        world = small_scenario.world
        asn = world.population.asns[0]
        client = world.population.in_as(asn)[0]
        prefix = client.prefix24
        location = world.assignments[prefix].primary.location_id
        current = pipeline.engine.issue(location, prefix, 10)
        assert current is not None
        probe = ProbedIssue(
            issue_key=(location, middle_asns(current.path)),
            prefix24=prefix,
            time=10,
            result=current,
            priority=1.0,
            issue_first_seen=5,
        )
        return pipeline, location, prefix, probe

    def _count_comparisons(self, pipeline, probe, monkeypatch):
        import repro.core.pipeline as pipeline_mod

        calls = []
        real = pipeline_mod.localize_culprit

        def counting(baseline, current):
            calls.append(baseline.time)
            return real(baseline, current)

        monkeypatch.setattr(pipeline_mod, "localize_culprit", counting)
        localized = pipeline._localize(probe)
        return calls, localized

    def test_single_baseline_compared_once(self, small_scenario, monkeypatch):
        pipeline, location, prefix, probe = self._probe_setup(small_scenario)
        baseline = pipeline.engine.issue(location, prefix, 0)
        pipeline.baselines.put(baseline)
        calls, localized = self._count_comparisons(pipeline, probe, monkeypatch)
        assert calls == [0]
        assert localized.verdict is not None

    def test_two_baselines_compared_newest_and_oldest(
        self, small_scenario, monkeypatch
    ):
        pipeline, location, prefix, probe = self._probe_setup(small_scenario)
        for time in (0, 2):
            pipeline.baselines.put(pipeline.engine.issue(location, prefix, time))
        calls, _ = self._count_comparisons(pipeline, probe, monkeypatch)
        assert calls == [2, 0]  # newest first, then the oldest
