"""Integration tests for repro.core.pipeline over small scenarios."""

import pytest

from repro.core.blame import Blame
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.net.asn import middle_asns
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario


def _fast_config(**overrides) -> BlameItConfig:
    defaults = dict(history_days=1, background_interval_buckets=36)
    defaults.update(overrides)
    return BlameItConfig(**defaults)


@pytest.fixture(scope="module")
def warm_pipeline_report(small_world):
    """One pipeline run over a scenario with a known cloud fault."""
    location = small_world.locations[0]
    fault = Fault(
        fault_id=0,
        target=FaultTarget(kind=SegmentKind.CLOUD, location_id=location.location_id),
        start=180,
        duration=12,
        added_ms=80.0,
    )
    scenario = Scenario(small_world, (fault,), ())
    pipeline = BlameItPipeline(scenario, config=_fast_config())
    pipeline.warmup(0, 144, stride=3)
    report = pipeline.run(150, 220)
    return location, report


class TestCloudFaultRun:
    def test_cloud_blames_dominate(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        assert report.blame_counts.get(Blame.CLOUD, 0) > 0
        fractions = report.blame_fractions()
        assert fractions[Blame.CLOUD] == max(
            fractions[b] for b in (Blame.CLOUD, Blame.MIDDLE, Blame.CLIENT)
        )

    def test_cloud_issue_tracked(self, warm_pipeline_report):
        location, report = warm_pipeline_report
        assert any(
            issue.key == location.location_id for issue in report.closed_cloud
        )

    def test_alert_emitted_for_fault(self, warm_pipeline_report):
        location, report = warm_pipeline_report
        cloud_alerts = [a for a in report.alerts if a.blame is Blame.CLOUD]
        assert cloud_alerts
        assert cloud_alerts[0].location_id == location.location_id
        assert cloud_alerts[0].culprit_asn == 8075

    def test_quartet_accounting(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        assert report.total_quartets > 0
        assert 0 < report.bad_quartets <= report.total_quartets

    def test_probe_accounting_consistent(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        assert report.probes_total == (
            report.probes_on_demand + report.probes_background + report.probes_bootstrap
        )
        assert report.probes_bootstrap > 0

    def test_durations_by_category_structure(self, warm_pipeline_report):
        _, report = warm_pipeline_report
        durations = report.durations_by_category()
        assert set(durations) == {Blame.CLOUD, Blame.MIDDLE, Blame.CLIENT}
        assert all(d >= 1 for ds in durations.values() for d in ds)


class TestMiddleFaultRun:
    def test_middle_issue_localized_to_faulty_as(self, small_world):
        slot = next(
            s
            for s in small_world.slots
            if len(middle_asns(small_world.mapper.path_for(s.location, s.client) or (0, 0))) >= 1
        )
        path = small_world.mapper.path_for(slot.location, slot.client)
        culprit = middle_asns(path)[0]
        fault = Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.MIDDLE, asn=culprit),
            start=180,
            duration=12,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        pipeline = BlameItPipeline(scenario, config=_fast_config())
        pipeline.warmup(0, 144, stride=3)
        report = pipeline.run(150, 210)
        verdicts = [
            item.verdict.asn
            for item in report.localized
            if item.verdict is not None and item.verdict.asn is not None
        ]
        assert culprit in verdicts

    def test_budget_zero_disables_on_demand(self, small_world):
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.MIDDLE, asn=small_world.middle_asn_pool()[0]
            ),
            start=180,
            duration=12,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        pipeline = BlameItPipeline(
            scenario, config=_fast_config(probe_budget_per_window=0)
        )
        pipeline.warmup(0, 72, stride=3)
        report = pipeline.run(150, 200)
        assert report.probes_on_demand == 0
        assert report.localized == []


class TestFixedTable:
    def test_fixed_table_skips_learning(self, small_world):
        scenario = Scenario(small_world, (), ())
        trainer = BlameItPipeline(scenario, config=_fast_config())
        trainer.warmup(0, 144, stride=3)
        table = trainer.learner.table()
        pipeline = BlameItPipeline(scenario, config=_fast_config(), fixed_table=table)
        report = pipeline.run(150, 165)
        assert report.total_quartets > 0
        # The internal learner never saw anything.
        assert pipeline.learner.table().cloud == {}


class TestHealthyRun:
    def test_no_faults_low_badness(self, small_world):
        scenario = Scenario(small_world, (), ())
        pipeline = BlameItPipeline(scenario, config=_fast_config())
        pipeline.warmup(0, 144, stride=3)
        report = pipeline.run(150, 200)
        assert report.bad_quartets <= report.total_quartets * 0.05
        assert report.probes_on_demand <= 5
