"""Tests for repro.core.passive: every branch of Algorithm 1."""

import pytest

from repro.cloud.locations import RTTTargets
from repro.core.blame import Blame
from repro.core.config import BlameItConfig
from repro.core.passive import PassiveLocalizer
from repro.core.quartet import Quartet
from repro.core.thresholds import ExpectedRTTTable
from repro.net.geo import Region

TARGET = 50.0


def _targets() -> RTTTargets:
    return RTTTargets(by_region={Region.USA: (TARGET, TARGET + 30.0)})


def _quartet(
    prefix=1,
    loc="edge-A",
    rtt=100.0,
    middle=(10,),
    n=20,
    mobile=False,
    asn=65000,
    time=0,
) -> Quartet:
    return Quartet(
        time=time,
        prefix24=prefix,
        location_id=loc,
        mobile=mobile,
        mean_rtt_ms=rtt,
        n_samples=n,
        users=10,
        client_asn=asn,
        middle=middle,
        region=Region.USA,
    )


def _table(cloud=30.0, middle=30.0) -> ExpectedRTTTable:
    return ExpectedRTTTable(
        cloud={("edge-A", False): cloud, ("edge-B", False): cloud},
        middle={((10,), False): middle, ((11,), False): middle},
    )


def _localizer(**overrides) -> PassiveLocalizer:
    return PassiveLocalizer(BlameItConfig(**overrides), _targets())


class TestCloudBranch:
    def test_cloud_blamed_when_location_wide(self):
        """All IP-/24s at the location above expected RTT → cloud."""
        quartets = [_quartet(prefix=i, rtt=90.0) for i in range(10)]
        results = _localizer().assign(quartets, _table())
        assert len(results) == 10
        assert all(r.blame is Blame.CLOUD for r in results)
        assert all(r.cloud_bad_fraction == pytest.approx(1.0) for r in results)

    def test_insufficient_when_few_quartets_at_location(self):
        quartets = [_quartet(prefix=i, rtt=90.0) for i in range(4)]
        results = _localizer().assign(quartets, _table())
        assert all(r.blame is Blame.INSUFFICIENT for r in results)

    def test_cloud_not_blamed_below_tau(self):
        """Only half the location's quartets bad → fall through."""
        bad = [_quartet(prefix=i, rtt=90.0, middle=(10,)) for i in range(6)]
        good = [_quartet(prefix=100 + i, rtt=20.0, middle=(11,)) for i in range(6)]
        results = _localizer().assign(bad + good, _table())
        assert all(r.blame is not Blame.CLOUD for r in results)

    def test_unweighted_by_samples(self):
        """A single high-volume healthy /24 cannot mask widespread badness
        (§4.2: CalcBadFraction does not weight by RTT sample counts)."""
        bad = [_quartet(prefix=i, rtt=90.0, n=10) for i in range(9)]
        whale = [_quartet(prefix=999, rtt=20.0, n=100_000)]
        results = _localizer().assign(bad + whale, _table())
        blamed = [r for r in results if r.quartet.prefix24 != 999]
        assert all(r.blame is Blame.CLOUD for r in blamed)

    def test_learned_threshold_catches_shift(self):
        """§4.3 example: RTTs in [40, 70] with target 50 but learned
        expected 40 → cloud correctly blamed."""
        rtts = [40 + 3 * i for i in range(11)]  # 40..70
        quartets = [
            _quartet(prefix=i, rtt=float(r)) for i, r in enumerate(rtts)
        ]
        results = _localizer().assign(quartets, _table(cloud=40.0))
        # Only quartets above the *target* are "bad" and get results...
        assert results
        assert all(r.blame is Blame.CLOUD for r in results)


class TestMiddleBranch:
    def test_middle_blamed_when_path_wide(self):
        """One path fully bad, the location otherwise healthy."""
        bad = [_quartet(prefix=i, rtt=90.0, middle=(10,)) for i in range(8)]
        good = [_quartet(prefix=100 + i, rtt=20.0, middle=(11,)) for i in range(12)]
        results = _localizer().assign(bad + good, _table())
        assert len(results) == 8
        assert all(r.blame is Blame.MIDDLE for r in results)
        assert all(r.middle_bad_fraction == pytest.approx(1.0) for r in results)

    def test_insufficient_when_path_thin(self):
        bad = [_quartet(prefix=i, rtt=90.0, middle=(10,)) for i in range(3)]
        good = [_quartet(prefix=100 + i, rtt=20.0, middle=(11,)) for i in range(12)]
        results = _localizer().assign(bad + good, _table())
        assert all(r.blame is Blame.INSUFFICIENT for r in results)

    def test_unknown_middle_expected_insufficient(self):
        """A path with no learned expected RTT cannot be judged."""
        bad = [_quartet(prefix=i, rtt=90.0, middle=(77,)) for i in range(8)]
        good = [_quartet(prefix=100 + i, rtt=20.0, middle=(11,)) for i in range(12)]
        results = _localizer().assign(bad + good, _table())
        assert all(r.blame is Blame.INSUFFICIENT for r in results)


class TestClientAndAmbiguous:
    def _mixed_path_quartets(self):
        """One bad client on a path where others are healthy."""
        bad = [_quartet(prefix=1, rtt=90.0, middle=(10,), asn=65001)]
        peers = [
            _quartet(prefix=100 + i, rtt=20.0, middle=(10,)) for i in range(8)
        ]
        filler = [
            _quartet(prefix=200 + i, rtt=20.0, middle=(11,)) for i in range(8)
        ]
        return bad, peers, filler

    def test_client_blamed(self):
        bad, peers, filler = self._mixed_path_quartets()
        results = _localizer().assign(bad + peers + filler, _table())
        assert len(results) == 1
        assert results[0].blame is Blame.CLIENT
        assert results[0].blamed_asn == 65001

    def test_ambiguous_when_good_elsewhere(self):
        bad, peers, filler = self._mixed_path_quartets()
        elsewhere = [_quartet(prefix=1, loc="edge-B", rtt=20.0, asn=65001)]
        results = _localizer().assign(bad + peers + filler + elsewhere, _table())
        blamed = [r for r in results if r.quartet.prefix24 == 1]
        assert len(blamed) == 1
        assert blamed[0].blame is Blame.AMBIGUOUS

    def test_bad_elsewhere_does_not_make_ambiguous(self):
        bad, peers, filler = self._mixed_path_quartets()
        elsewhere_bad = [_quartet(prefix=1, loc="edge-B", rtt=95.0, asn=65001)]
        results = _localizer().assign(bad + peers + filler + elsewhere_bad, _table())
        blamed = [r for r in results if r.quartet.location_id == "edge-A"]
        assert blamed[0].blame is Blame.CLIENT


class TestGating:
    def test_sample_gate_excludes_thin_quartets(self):
        thin = [_quartet(prefix=i, rtt=90.0, n=5) for i in range(10)]
        results = _localizer().assign(thin, _table())
        assert results == []

    def test_good_quartets_produce_no_results(self):
        good = [_quartet(prefix=i, rtt=20.0) for i in range(10)]
        assert _localizer().assign(good, _table()) == []

    def test_mobile_uses_mobile_target(self):
        """RTT between the fixed and mobile targets: bad only for fixed."""
        rtt = TARGET + 10.0  # below mobile target (TARGET + 30)
        fixed = [_quartet(prefix=i, rtt=rtt) for i in range(6)]
        mobile = [
            _quartet(prefix=100 + i, rtt=rtt, mobile=True) for i in range(6)
        ]
        table = ExpectedRTTTable(
            cloud={("edge-A", False): 30.0, ("edge-A", True): 30.0},
            middle={((10,), False): 30.0, ((10,), True): 30.0},
        )
        results = _localizer().assign(fixed + mobile, table)
        assert {r.quartet.mobile for r in results} == {False}


class TestBoundaries:
    """Exact-threshold behaviour of Algorithm 1 (§4.2 conventions)."""

    def test_exactly_min_aggregate_is_sufficient(self):
        """min_aggregate_quartets quartets is enough — the comparison is
        strictly *fewer than* the minimum."""
        quartets = [_quartet(prefix=i, rtt=90.0) for i in range(5)]
        results = _localizer().assign(quartets, _table())
        assert len(results) == 5
        assert all(r.blame is Blame.CLOUD for r in results)

    def test_one_below_min_aggregate_is_insufficient(self):
        quartets = [_quartet(prefix=i, rtt=90.0) for i in range(4)]
        results = _localizer().assign(quartets, _table())
        assert all(r.blame is Blame.INSUFFICIENT for r in results)

    def test_exactly_min_aggregate_on_middle_path(self):
        """The same boundary applies at the middle step."""
        bad = [_quartet(prefix=i, rtt=90.0, middle=(10,)) for i in range(5)]
        good = [_quartet(prefix=100 + i, rtt=20.0, middle=(11,)) for i in range(12)]
        results = _localizer().assign(bad + good, _table())
        assert len(results) == 5
        assert all(r.blame is Blame.MIDDLE for r in results)

    def test_bad_fraction_exactly_tau_blames(self):
        """A bad fraction of exactly τ fires (≥ τ, not > τ): 8 of 10
        judged quartets above the learned expected RTT."""
        above = [_quartet(prefix=i, rtt=90.0) for i in range(8)]
        below = [_quartet(prefix=100 + i, rtt=55.0) for i in range(2)]
        results = _localizer().assign(above + below, _table(cloud=60.0))
        assert len(results) == 10  # all breach the 50 ms target
        assert all(r.blame is Blame.CLOUD for r in results)
        assert all(r.cloud_bad_fraction == pytest.approx(0.8) for r in results)
        stricter = _localizer(tau=0.81).assign(above + below, _table(cloud=60.0))
        assert all(r.blame is not Blame.CLOUD for r in stricter)

    def test_rtt_exactly_at_expected_counts_bad(self):
        """At-or-above the learned expected RTT is bad (>= convention);
        under a strict > every quartet here would look good vs expected
        and the cloud step could never fire."""
        quartets = [_quartet(prefix=i, rtt=90.0) for i in range(6)]
        results = _localizer().assign(quartets, _table(cloud=90.0))
        assert len(results) == 6
        assert all(r.blame is Blame.CLOUD for r in results)
        assert all(r.cloud_bad_fraction == pytest.approx(1.0) for r in results)

    def test_rtt_exactly_at_target_is_bad(self):
        """Sitting exactly on the region badness target counts as bad."""
        quartets = [_quartet(prefix=i, rtt=TARGET) for i in range(6)]
        results = _localizer().assign(quartets, _table())
        assert len(results) == 6

    def test_rtt_just_below_target_is_good(self):
        quartets = [_quartet(prefix=i, rtt=TARGET - 0.001) for i in range(6)]
        assert _localizer().assign(quartets, _table()) == []


class TestWindowing:
    def test_assign_window_groups_by_bucket(self):
        """Aggregate statistics must not leak across buckets: 4 quartets
        in each of two buckets is insufficient even though 8 > 5."""
        bucket0 = [_quartet(prefix=i, rtt=90.0, time=0) for i in range(4)]
        bucket1 = [_quartet(prefix=i, rtt=90.0, time=1) for i in range(4)]
        results = _localizer().assign_window(bucket0 + bucket1, _table())
        assert len(results) == 8
        assert all(r.blame is Blame.INSUFFICIENT for r in results)

    def test_tau_override(self):
        quartets = [_quartet(prefix=i, rtt=90.0) for i in range(6)] + [
            _quartet(prefix=50, rtt=20.0)
        ]
        strict = _localizer(tau=1.0).assign(quartets, _table())
        assert all(r.blame is not Blame.CLOUD for r in strict)
        lax = _localizer(tau=0.5).assign(quartets, _table())
        assert all(r.blame is Blame.CLOUD for r in lax)
