"""Unit and end-to-end tests for the `repro.chaos` fault-injection
subsystem: the deterministic hash, plan semantics, quartet injection and
sanitization, probe timeouts with bounded retries, baseline fates, the
degraded no-table passive mode, and full chaos runs of both pipelines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    FaultPlan,
    inject_batch,
    inject_quartets,
    sanitize_batch,
    sanitize_quartets,
    uniform,
    uniforms,
)
from repro.cloud.traceroute import TracerouteEngine
from repro.core.active import OnDemandProber, ProbeBudget
from repro.core.background import BackgroundProber, BaselineStore
from repro.core.blame import Blame
from repro.core.config import BlameItConfig
from repro.core.passive import PassiveLocalizer
from repro.core.pipeline import BlameItPipeline, PipelineReport
from repro.core.prediction import ClientCountPredictor, DurationPredictor
from repro.core.quartet import QuartetBatch
from repro.core.thresholds import ExpectedRTTLearner
from repro.obs import MetricsRegistry, validate_snapshot
from repro.perf.sharded import ShardedPipeline
from repro.sim.scenario import Scenario

from tests.test_perf import _random_quartets, _targets


def _config(**overrides) -> BlameItConfig:
    return BlameItConfig(
        history_days=1, background_interval_buckets=36, **overrides
    )


@pytest.fixture(scope="module")
def trained(small_world):
    """A scenario plus a pre-trained expected-RTT table."""
    scenario = Scenario.from_world(small_world)
    learner = ExpectedRTTLearner(history_days=1)
    BlameItPipeline(scenario, config=_config(), learner=learner).warmup(
        0, 96, stride=4
    )
    return scenario, learner.table()


def _pipeline(trained, chaos=None, metrics=None) -> BlameItPipeline:
    scenario, table = trained
    return BlameItPipeline(
        scenario,
        config=_config(),
        fixed_table=table,
        seed=11,
        rng_per_bucket=True,
        metrics=metrics,
        chaos=chaos,
    )


class TestUniformHash:
    def test_deterministic(self):
        assert uniform(3, "x", 1, 2) == uniform(3, "x", 1, 2)

    def test_sensitive_to_every_lane(self):
        base = uniform(3, "x", 1, 2)
        assert base != uniform(4, "x", 1, 2)
        assert base != uniform(3, "y", 1, 2)
        assert base != uniform(3, "x", 1, 3)

    def test_vector_matches_scalar(self):
        a = np.arange(100, dtype=np.int64)
        b = np.arange(100, dtype=np.int64) * 7
        vec = uniforms(9, "probe", a, b)
        for i in range(100):
            assert vec[i] == uniform(9, "probe", int(a[i]), int(b[i]))

    def test_bounds_and_spread(self):
        draws = uniforms(0, "spread", np.arange(4096, dtype=np.int64))
        assert draws.min() >= 0.0
        assert draws.max() < 1.0
        assert 0.45 < draws.mean() < 0.55

    def test_order_independent(self):
        """A key's uniform does not depend on its row position."""
        keys = np.array([5, 6, 7], dtype=np.int64)
        forward = uniforms(1, "k", keys)
        backward = uniforms(1, "k", keys[::-1])
        assert forward.tolist() == backward[::-1].tolist()


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quartet_drop_rate": 1.5},
            {"probe_timeout_rate": -0.1},
            {"probe_retry_attempts": -1},
            {"shard_crash_max": -1},
            {"slow_shard_ms": -1.0},
            {"baseline_stale_age_buckets": 0},
            {"window": (5, 5)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_enabled(self):
        assert not FaultPlan().enabled
        assert not FaultPlan(seed=7).enabled
        assert FaultPlan(quartet_drop_rate=0.01).enabled
        assert FaultPlan(drop_expected_table=True).enabled
        assert FaultPlan.smoke().enabled

    def test_window(self):
        plan = FaultPlan(quartet_drop_rate=1.0, window=(10, 20))
        assert not plan.in_window(9)
        assert plan.in_window(10)
        assert plan.in_window(19)
        assert not plan.in_window(20)
        mask = plan.window_mask(np.array([9, 10, 19, 20]))
        assert mask.tolist() == [False, True, True, False]
        assert FaultPlan().window_mask(np.array([0])) is True

    def test_shard_crash_honors_attempt_cap(self):
        plan = FaultPlan(seed=2, shard_crash_rate=1.0, shard_crash_max=2)
        assert plan.shard_crashes(0, 17, 0)
        assert plan.shard_crashes(0, 17, 1)
        assert not plan.shard_crashes(0, 17, 2)
        assert not FaultPlan(seed=2).shard_crashes(0, 17, 0)

    def test_shard_faults_respect_window(self):
        plan = FaultPlan(
            seed=2,
            shard_crash_rate=1.0,
            slow_shard_rate=1.0,
            slow_shard_ms=4.0,
            window=(10, 20),
        )
        # No overlap with the window: inert.
        assert not plan.shard_crashes(20, 30, 0)
        assert plan.shard_delay_ms(20, 30) == 0.0
        # Any overlap: eligible.
        assert plan.shard_crashes(0, 11, 0)
        assert plan.shard_delay_ms(0, 11) == 4.0

    def test_baseline_fate_extremes_and_mix(self):
        missing = FaultPlan(seed=3, baseline_missing_rate=1.0)
        stale = FaultPlan(seed=3, baseline_stale_rate=1.0)
        assert missing.baseline_fate("edge-0", 17) == "missing"
        assert stale.baseline_fate("edge-0", 17) == "stale"
        assert FaultPlan(seed=3).baseline_fate("edge-0", 17) == "ok"
        mixed = FaultPlan(
            seed=3, baseline_missing_rate=0.3, baseline_stale_rate=0.3
        )
        fates = [mixed.baseline_fate(f"loc-{i}", i) for i in range(300)]
        assert {"ok", "missing", "stale"} == set(fates)
        # Same roll decides both fates: deterministic across calls.
        assert fates == [mixed.baseline_fate(f"loc-{i}", i) for i in range(300)]

    def test_probe_streams_are_independent(self):
        plan = FaultPlan(seed=9, probe_timeout_rate=0.5)
        fates = [
            (
                plan.probe_times_out("probe.timeout.on_demand", "edge-x", p, 10, 0),
                plan.probe_times_out("probe.timeout.background", "edge-x", p, 10, 0),
            )
            for p in range(64)
        ]
        assert any(a != b for a, b in fates)


class TestQuartetInjection:
    _PLAN_RATES = dict(
        quartet_drop_rate=0.1,
        quartet_duplicate_rate=0.1,
        quartet_corrupt_rate=0.1,
    )

    @pytest.mark.parametrize("seed", range(10))
    def test_scalar_and_batch_agree(self, seed):
        """The columnar injector (sharded workers) and the scalar one
        (sequential pipeline) give every quartet the same fate."""
        rng = np.random.default_rng(seed)
        quartets = _random_quartets(rng, 200)
        plan = FaultPlan(seed=seed, **self._PLAN_RATES)
        scalar_metrics, batch_metrics = MetricsRegistry(), MetricsRegistry()
        scalar = sanitize_quartets(
            inject_quartets(plan, quartets, scalar_metrics), scalar_metrics
        )
        batch = sanitize_batch(
            inject_batch(plan, QuartetBatch.from_quartets(quartets), batch_metrics),
            batch_metrics,
        ).to_quartets()
        assert scalar == batch
        assert (
            scalar_metrics.snapshot()["counters"]
            == batch_metrics.snapshot()["counters"]
        )

    def test_faults_actually_fire(self):
        rng = np.random.default_rng(0)
        quartets = _random_quartets(rng, 400)
        metrics = MetricsRegistry()
        plan = FaultPlan(seed=0, **self._PLAN_RATES)
        inject_quartets(plan, quartets, metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["chaos.quartet.dropped"] > 0
        assert counters["chaos.quartet.corrupted"] > 0
        assert counters["chaos.quartet.duplicated"] > 0

    def test_zero_rate_plan_is_noop(self):
        rng = np.random.default_rng(1)
        quartets = _random_quartets(rng, 50)
        plan = FaultPlan(seed=1)
        assert inject_quartets(plan, quartets) is quartets
        batch = QuartetBatch.from_quartets(quartets)
        assert inject_batch(plan, batch) is batch

    def test_window_gates_injection(self):
        rng = np.random.default_rng(1)
        quartets = _random_quartets(rng, 50)  # all at bucket 0
        plan = FaultPlan(
            seed=1,
            quartet_drop_rate=1.0,
            quartet_duplicate_rate=1.0,
            quartet_corrupt_rate=1.0,
            window=(1000, 2000),
        )
        assert inject_quartets(plan, quartets) is quartets

    def test_drop_wins_over_other_faults(self):
        rng = np.random.default_rng(2)
        quartets = _random_quartets(rng, 30)
        metrics = MetricsRegistry()
        plan = FaultPlan(
            seed=2,
            quartet_drop_rate=1.0,
            quartet_duplicate_rate=1.0,
            quartet_corrupt_rate=1.0,
        )
        assert inject_quartets(plan, quartets, metrics) == []
        counters = metrics.snapshot()["counters"]
        assert counters["chaos.quartet.dropped"] == 30
        assert "chaos.quartet.corrupted" not in counters

    def test_duplicates_land_adjacent(self):
        rng = np.random.default_rng(3)
        quartets = _random_quartets(rng, 20)
        plan = FaultPlan(seed=3, quartet_duplicate_rate=1.0)
        doubled = inject_quartets(plan, quartets)
        assert len(doubled) == 40
        assert doubled[0] == doubled[1]
        assert doubled[::2] == quartets


class TestSanitization:
    def _with_invalid(self, rng):
        quartets = _random_quartets(rng, 20)
        broken = [
            quartets[3]._replace(mean_rtt_ms=float("nan")),
            quartets[7]._replace(mean_rtt_ms=0.0),
            quartets[11]._replace(n_samples=0),
            quartets[15]._replace(users=-1),
        ]
        for index, bad in zip((3, 7, 11, 15), broken):
            quartets[index] = bad
        return quartets

    def test_clean_input_returns_same_object(self):
        rng = np.random.default_rng(4)
        quartets = _random_quartets(rng, 20)
        assert sanitize_quartets(quartets) is quartets
        batch = QuartetBatch.from_quartets(quartets)
        assert sanitize_batch(batch) is batch

    def test_invalid_rows_dropped_and_counted(self):
        rng = np.random.default_rng(4)
        quartets = self._with_invalid(rng)
        metrics = MetricsRegistry()
        kept = sanitize_quartets(quartets, metrics)
        assert len(kept) == 16
        assert metrics.snapshot()["counters"]["sanitize.quartets_dropped"] == 4
        batch_metrics = MetricsRegistry()
        batch_kept = sanitize_batch(
            QuartetBatch.from_quartets(quartets), batch_metrics
        ).to_quartets()
        assert batch_kept == kept
        assert (
            batch_metrics.snapshot()["counters"]["sanitize.quartets_dropped"] == 4
        )


class TestProbeChaos:
    @pytest.fixture()
    def target(self, small_scenario):
        quartet = small_scenario.generate_quartets(50)[0]
        return quartet.location_id, quartet.prefix24

    def _prober(self, small_scenario, chaos, budget_slots=5):
        engine = TracerouteEngine(small_scenario, np.random.default_rng(0))
        metrics = MetricsRegistry()
        prober = OnDemandProber(
            engine,
            DurationPredictor(),
            ClientCountPredictor(3),
            ProbeBudget(budget_slots),
            metrics=metrics,
            chaos=chaos,
        )
        prober.budget.start_window()
        return prober, metrics

    def test_no_chaos_issues_single_probe(self, small_scenario, target):
        prober, metrics = self._prober(small_scenario, chaos=None)
        assert prober._issue(*target, 50) is not None
        assert prober.probes_issued == 1
        counters = metrics.snapshot()["counters"]
        assert counters == {"probe.on_demand.issued": 1}

    def test_all_timeouts_abandon_after_bounded_retries(
        self, small_scenario, target
    ):
        plan = FaultPlan(seed=1, probe_timeout_rate=1.0, probe_retry_attempts=2)
        prober, metrics = self._prober(small_scenario, chaos=plan)
        assert prober._issue(*target, 50) is None
        assert prober.probes_issued == 3  # initial attempt + 2 retries
        counters = metrics.snapshot()["counters"]
        assert counters["chaos.probe.timeout"] == 3
        assert counters["retry.probe.attempts"] == 2
        assert counters["retry.probe.abandoned"] == 1
        assert "retry.probe.recovered" not in counters

    def test_retry_recovers_a_lost_probe(self, small_scenario, target):
        location_id, prefix = target
        for seed in range(500):
            plan = FaultPlan(
                seed=seed, probe_timeout_rate=0.5, probe_retry_attempts=2
            )
            if plan.probe_times_out(
                "probe.timeout.on_demand", location_id, prefix, 50, 0
            ) and not plan.probe_times_out(
                "probe.timeout.on_demand", location_id, prefix, 50, 1
            ):
                break
        else:  # pragma: no cover - seed search is deterministic
            pytest.fail("no seed times out attempt 0 but not attempt 1")
        prober, metrics = self._prober(small_scenario, chaos=plan)
        assert prober._issue(location_id, prefix, 50) is not None
        counters = metrics.snapshot()["counters"]
        assert counters["chaos.probe.timeout"] == 1
        assert counters["retry.probe.attempts"] == 1
        assert counters["retry.probe.recovered"] == 1

    def test_retries_honor_probe_budget(self, small_scenario, target):
        plan = FaultPlan(seed=1, probe_timeout_rate=1.0, probe_retry_attempts=3)
        prober, metrics = self._prober(small_scenario, chaos=plan, budget_slots=1)
        # The caller's probe_window consumed the only slot for this location.
        assert prober.budget.try_consume(target[0])
        assert prober._issue(*target, 50) is None
        assert prober.probes_issued == 1  # retry denied before re-probing
        counters = metrics.snapshot()["counters"]
        assert counters["retry.probe.denied"] == 1
        assert "retry.probe.attempts" not in counters

    def test_background_loss_leaves_baseline_absent(self, small_scenario, target):
        engine = TracerouteEngine(small_scenario, np.random.default_rng(0))
        store = BaselineStore()
        metrics = MetricsRegistry()
        prober = BackgroundProber(
            engine=engine,
            store=store,
            metrics=metrics,
            chaos=FaultPlan(seed=1, probe_timeout_rate=1.0, probe_retry_attempts=1),
        )
        assert prober._probe(*target, 50) is None
        assert len(store) == 0
        counters = metrics.snapshot()["counters"]
        assert counters["chaos.probe.loss"] == 2
        assert counters["retry.probe.background.attempts"] == 1
        assert counters["retry.probe.background.abandoned"] == 1


class TestBaselineChaos:
    def _bootstrap(self, trained, plan):
        metrics = MetricsRegistry()
        pipe = _pipeline(trained, chaos=plan, metrics=metrics)
        pipe.warmup(0, 48, stride=8)  # register background targets
        report = PipelineReport(start=100, end=100)
        pipe._bootstrap_baselines(100, report)
        return pipe, report, metrics.snapshot()["counters"]

    def test_missing_baselines_skip_bootstrap_probes(self, trained):
        plan = FaultPlan(seed=3, baseline_missing_rate=1.0)
        pipe, report, counters = self._bootstrap(trained, plan)
        assert pipe.background.target_count > 0
        assert report.probes_bootstrap == 0
        assert len(pipe.baselines) == 0
        assert counters["chaos.baseline.missing"] == pipe.background.target_count

    def test_stale_baselines_probed_in_the_past(self, trained):
        plan = FaultPlan(
            seed=3, baseline_stale_rate=1.0, baseline_stale_age_buckets=90
        )
        pipe, report, counters = self._bootstrap(trained, plan)
        assert counters["chaos.baseline.stale"] == pipe.background.target_count
        assert report.probes_bootstrap > 0
        times = {
            result.time
            for history in pipe.baselines._by_middle.values()
            for result in history
        }
        assert times == {9}  # start - 1 - stale age


class TestDegradedTable:
    def test_passive_degrades_without_table(self):
        rng = np.random.default_rng(0)
        quartets = _random_quartets(rng, 200)
        metrics = MetricsRegistry()
        localizer = PassiveLocalizer(BlameItConfig(), _targets(), metrics=metrics)
        results = localizer.assign(quartets, None)
        assert results
        assert {result.blame for result in results} == {Blame.INSUFFICIENT}
        counters = metrics.snapshot()["counters"]
        assert counters["passive.degraded_no_table"] == 1

    def test_pipeline_survives_dropped_table(self, trained):
        metrics = MetricsRegistry()
        plan = FaultPlan(drop_expected_table=True)
        report = _pipeline(trained, chaos=plan, metrics=metrics).run(100, 115)
        counters = report.metrics["counters"]
        assert counters["chaos.baseline.table_dropped"] == 1
        assert set(report.blame_counts) <= {Blame.INSUFFICIENT}
        assert report.alerts == []


class TestEndToEndChaos:
    def test_smoke_plan_sequential(self, trained):
        metrics = MetricsRegistry()
        pipe = _pipeline(trained, chaos=FaultPlan.smoke(1), metrics=metrics)
        pipe.warmup(0, 48, stride=8)
        report = pipe.run(100, 130)
        validate_snapshot(report.metrics)
        counters = report.metrics["counters"]
        assert any(name.startswith("chaos.") for name in counters)
        assert report.total_quartets > 0

    def test_smoke_plan_sharded(self, trained):
        scenario, table = trained
        metrics = MetricsRegistry()
        report = ShardedPipeline(
            scenario,
            config=_config(vectorized_passive=True),
            fixed_table=table,
            seed=11,
            n_workers=1,
            buckets_per_shard=13,
            metrics=metrics,
            chaos=FaultPlan.smoke(1),
            shard_retry_attempts=2,
        ).run(100, 130)
        validate_snapshot(report.metrics)
        counters = report.metrics["counters"]
        assert counters["shard.runs"] >= 3
        assert any(name.startswith("chaos.") for name in counters)
        assert report.total_quartets > 0

    def test_slow_shard_counted(self, trained):
        scenario, table = trained
        metrics = MetricsRegistry()
        ShardedPipeline(
            scenario,
            config=_config(vectorized_passive=True),
            fixed_table=table,
            seed=11,
            n_workers=1,
            buckets_per_shard=13,
            metrics=metrics,
            chaos=FaultPlan(seed=1, slow_shard_rate=1.0, slow_shard_ms=0.1),
        ).run(100, 113)
        assert metrics.snapshot()["counters"]["chaos.shard.slow"] == 1

    def test_abandoned_shards_degrade_gracefully(self, trained):
        """Crashes beyond the retry allowance lose those shards' data but
        never the run: the report completes, empty but well-formed."""
        scenario, table = trained
        metrics = MetricsRegistry()
        report = ShardedPipeline(
            scenario,
            config=_config(vectorized_passive=True),
            fixed_table=table,
            seed=11,
            n_workers=1,
            buckets_per_shard=13,
            metrics=metrics,
            chaos=FaultPlan(seed=5, shard_crash_rate=1.0, shard_crash_max=2),
            shard_retry_attempts=1,
        ).run(100, 130)
        validate_snapshot(report.metrics)
        counters = report.metrics["counters"]
        assert counters["chaos.shard.crashed"] == 6  # 3 shards x 2 attempts
        assert counters["retry.shard.abandoned"] == 3
        assert counters["shard.runs"] == 6
        assert report.total_quartets == 0
        assert report.alerts == []
