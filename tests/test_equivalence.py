"""Seeded randomized equivalence harness.

Three byte-identity properties, each over seeded randomness so failures
reproduce exactly:

1. the vectorized passive phase equals the scalar reference over ~50
   random buckets;
2. a sharded run equals the sequential pipeline, report-for-report;
3. both still hold under deterministic chaos — injected worker crashes
   (recovered by the per-shard retry) and injected quartet faults — and
   a single genuine worker failure costs exactly one shard re-run, not
   the whole range.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.validation import suite_world_params
from repro.chaos import ChaosKill, FaultPlan
from repro.core.config import BlameItConfig
from repro.core.passive import PassiveLocalizer
from repro.core.pipeline import BlameItPipeline
from repro.core.thresholds import ExpectedRTTLearner
from repro.io import report_to_dict
from repro.obs import MetricsRegistry, validate_snapshot
from repro.perf.sharded import ShardedPipeline, _ShardRunner
from repro.sim.incidents import (
    ADVERSARIAL_ARCHETYPES,
    PAPER_ARCHETYPES,
    generate_incidents,
)
from repro.sim.scenario import Scenario, build_world
from repro.store import CheckpointStore

from tests.test_perf import _random_quartets, _random_table, _targets


def report_json(report, *, with_metrics: bool = False) -> str:
    """Canonical JSON digest of a report (metrics stripped by default —
    shard bookkeeping and chaos counters legitimately differ between
    drivers while the *results* must not)."""
    digest = report_to_dict(report)
    if not with_metrics:
        digest.pop("metrics", None)
    return json.dumps(digest, sort_keys=True)


class TestVectorizedPassiveEquivalence:
    @pytest.mark.parametrize("seed", range(50))
    def test_assign_batch_matches_scalar(self, seed):
        """50-seed property sweep: identical results (order, blames,
        fractions) between the scalar and vectorized Algorithm 1."""
        rng = np.random.default_rng(seed)
        quartets = _random_quartets(rng, 300)
        table = _random_table(rng)
        scalar = PassiveLocalizer(BlameItConfig(), _targets())
        vector = PassiveLocalizer(
            BlameItConfig(vectorized_passive=True), _targets()
        )
        assert vector.assign(quartets, table) == scalar.assign(quartets, table)


class TestShardedEquivalence:
    @pytest.fixture(scope="class")
    def trained(self, small_world):
        scenario = Scenario.from_world(small_world)
        learner = ExpectedRTTLearner(history_days=1)
        trainer = BlameItPipeline(
            scenario, config=self._config(), learner=learner
        )
        trainer.warmup(0, 96, stride=4)
        return scenario, learner.table()

    @staticmethod
    def _config(**overrides) -> BlameItConfig:
        return BlameItConfig(
            history_days=1, background_interval_buckets=36, **overrides
        )

    def _sequential(self, trained, chaos=None):
        scenario, table = trained
        return BlameItPipeline(
            scenario,
            config=self._config(),
            fixed_table=table,
            seed=11,
            rng_per_bucket=True,
            chaos=chaos,
        ).run(100, 160)

    def _sharded(self, trained, chaos=None, metrics=None, retries=1):
        scenario, table = trained
        return ShardedPipeline(
            scenario,
            config=self._config(vectorized_passive=True),
            fixed_table=table,
            seed=11,
            n_workers=1,
            buckets_per_shard=13,
            metrics=metrics,
            chaos=chaos,
            shard_retry_attempts=retries,
        ).run(100, 160)

    def test_clean_runs_byte_identical(self, trained):
        assert report_json(
            self._sharded(trained), with_metrics=True
        ) == report_json(self._sequential(trained), with_metrics=True)

    @staticmethod
    def _assert_learner_state_equal(got_learner, expected_learner):
        for store_got, store_exp in (
            (got_learner._cloud, expected_learner._cloud),
            (got_learner._middle, expected_learner._middle),
        ):
            assert list(store_got) == list(store_exp)
            for key in store_exp:
                assert store_got[key].values == store_exp[key].values
                assert store_got[key].seen == store_exp[key].seen

    def _online_run(self, world, start, end, sharded: bool):
        # Fresh scenario per run: warmup draws from the scenario's
        # shared RNG stream, so the pipelines must not share one.
        scenario = Scenario.from_world(world)
        if sharded:
            pipeline = ShardedPipeline(
                scenario,
                config=self._config(vectorized_passive=True),
                seed=11,
                n_workers=2,
                buckets_per_shard=13,
            )
        else:
            pipeline = BlameItPipeline(
                scenario, config=self._config(), seed=11,
                rng_per_bucket=True,
            )
        pipeline.warmup(0, 96, stride=4)
        report = pipeline.run(start, end)
        learner = (pipeline.pipeline if sharded else pipeline).learner
        return report, learner

    def test_online_learning_byte_identical(self, small_world):
        """No fixed table: the fold feeds the learner from shipped
        columns, so report AND end-of-run learner state match the
        sequential pipeline (single-day window — one table snapshot
        covers the whole run)."""
        got, got_learner = self._online_run(small_world, 100, 160, sharded=True)
        expected, expected_learner = self._online_run(
            small_world, 100, 160, sharded=False
        )
        assert report_json(got) == report_json(expected)
        self._assert_learner_state_equal(got_learner, expected_learner)

    def test_multi_day_online_learning_byte_identical(self, multi_day_world):
        """Regression for the single start-of-run table snapshot: an
        online-learning run spanning day boundaries must re-snapshot the
        expected-RTT table at each boundary, the way the sequential loop
        does — including for windows that straddle a boundary, whose
        buckets the workers defer to the fold. Three days, two workers,
        report and learner state byte-identical."""
        got, got_learner = self._online_run(
            multi_day_world, 100, 700, sharded=True
        )
        expected, expected_learner = self._online_run(
            multi_day_world, 100, 700, sharded=False
        )
        assert report_json(got) == report_json(expected)
        self._assert_learner_state_equal(got_learner, expected_learner)

    def test_crash_plus_retry_byte_identical(self, trained):
        """Every shard's worker crashes once; the per-shard retry recovers
        each, and the report still matches the sequential run exactly."""
        plan = FaultPlan(seed=5, shard_crash_rate=1.0, shard_crash_max=1)
        metrics = MetricsRegistry()
        got = self._sharded(trained, chaos=plan, metrics=metrics)
        expected = self._sequential(trained, chaos=plan)
        assert report_json(got) == report_json(expected)
        counters = got.metrics["counters"]
        n_shards = 5  # ceil(60 / 13)
        # Each crashed shard was re-executed exactly once per retry attempt.
        assert counters["chaos.shard.crashed"] == n_shards
        assert counters["retry.shard.attempts"] == n_shards
        assert counters["retry.shard.recovered"] == n_shards
        assert counters["shard.runs"] == 2 * n_shards
        assert "retry.shard.abandoned" not in counters
        validate_snapshot(got.metrics)

    def test_quartet_chaos_byte_identical(self, trained):
        """Dropped/duplicated/corrupted quartets are keyed on quartet
        identity, so sequential and sharded runs inject the same faults
        and produce identical degraded reports."""
        plan = FaultPlan(
            seed=7,
            quartet_drop_rate=0.05,
            quartet_duplicate_rate=0.05,
            quartet_corrupt_rate=0.05,
        )
        got = self._sharded(trained, chaos=plan)
        expected = self._sequential(trained, chaos=plan)
        assert report_json(got) == report_json(expected)
        # The faults actually fired: the degraded run differs from clean.
        assert report_json(expected) != report_json(self._sequential(trained))

    def test_single_failure_costs_exactly_one_shard(self, trained, monkeypatch):
        """Regression for the old all-or-nothing fallback: one worker
        failure must re-run only the failed shard, keeping every
        completed shard's results."""
        calls: list[tuple[tuple[int, int], int]] = []
        original = _ShardRunner.run_shard

        def flaky(self, bounds, attempt=0):
            calls.append((bounds, attempt))
            if bounds == (113, 126) and attempt == 0:
                raise RuntimeError("simulated worker death")
            return original(self, bounds, attempt)

        monkeypatch.setattr(_ShardRunner, "run_shard", flaky)
        metrics = MetricsRegistry()
        got = self._sharded(trained, metrics=metrics)
        # 5 shards of 13 buckets over [100, 160), plus exactly one retry.
        assert len(calls) == 6
        assert calls.count(((113, 126), 0)) == 1
        assert calls.count(((113, 126), 1)) == 1
        counters = got.metrics["counters"]
        assert counters["shard.runs"] == 6
        assert counters["shard.errors"] == 1
        assert counters["retry.shard.recovered"] == 1
        assert report_json(got) == report_json(self._sequential(trained))


class TestSuiteScenarioEquivalence:
    """The scenario-suite's churn — demand surges, anycast ring flaps,
    correlated transit faults, reroutes — must survive the sharded
    transport and the checkpoint store byte-identically.

    One scenario carries every incident family at once (the mixed-suite
    worst case), on a two-day variant of the canonical suite world so
    the run crosses a day-boundary checkpoint. Seed 7 places all nine
    family windows inside the run; the fixture asserts it so a future
    placement drift fails loudly instead of silently weakening the test.
    """

    START, END = 132, 400
    KILL_AT = 288  # the one day boundary inside [START, END)

    @pytest.fixture(scope="class")
    def suite_world_2d(self):
        params = dataclasses.replace(suite_world_params(), duration_days=2)
        return build_world(params)

    @pytest.fixture(scope="class")
    def suite_specs(self, suite_world_2d):
        families = PAPER_ARCHETYPES + ADVERSARIAL_ARCHETYPES
        specs = generate_incidents(
            suite_world_2d, len(families), np.random.default_rng(7),
            families=families,
        )
        for spec in specs:
            assert spec.start < self.END, spec.archetype
            assert spec.start + spec.duration > self.START, spec.archetype
        assert any(s.surges for s in specs)
        assert any(s.ring_flaps for s in specs)
        return specs

    @staticmethod
    def _config(**overrides) -> BlameItConfig:
        return BlameItConfig(
            history_days=1, background_interval_buckets=36, **overrides
        )

    def _run(self, world, specs, *, workers=None, store=None,
             warm_start=False, kill=None):
        # Fresh scenario per run: quartet generation draws from the
        # scenario's shared RNG stream, so runs must not share one.
        scenario = Scenario(
            world,
            tuple(f for s in specs for f in s.faults),
            tuple(r for s in specs for r in s.reroutes),
            surges=tuple(g for s in specs for g in s.surges),
            ring_flaps=tuple(f for s in specs for f in s.ring_flaps),
        )
        chaos = (
            FaultPlan(seed=1, kill_at_bucket=kill) if kill is not None
            else None
        )
        if workers is not None:
            pipeline = ShardedPipeline(
                scenario,
                config=self._config(vectorized_passive=True),
                seed=11,
                n_workers=workers,
                buckets_per_shard=13,
                store=store,
                warm_start=warm_start,
                chaos=chaos,
            )
        else:
            pipeline = BlameItPipeline(
                scenario,
                config=self._config(),
                seed=11,
                rng_per_bucket=True,
                store=store,
                warm_start=warm_start,
                chaos=chaos,
            )
        if not warm_start:
            pipeline.warmup(0, 96, stride=4)
        return pipeline.run(self.START, self.END)

    @pytest.fixture(scope="class")
    def baseline(self, suite_world_2d, suite_specs) -> str:
        """The uninterrupted sequential run's digest."""
        report = self._run(suite_world_2d, suite_specs)
        # The mixed faults are not a no-op over this window.
        assert report.closed_cloud or report.closed_client
        return report_json(report)

    def test_two_workers_byte_identical(
        self, suite_world_2d, suite_specs, baseline
    ):
        got = self._run(suite_world_2d, suite_specs, workers=2)
        assert report_json(got) == baseline

    def test_sequential_kill_resume_byte_identical(
        self, suite_world_2d, suite_specs, baseline, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ChaosKill):
            self._run(
                suite_world_2d, suite_specs, store=store, kill=self.KILL_AT
            )
        assert store.latest_time() == self.KILL_AT
        report = self._run(
            suite_world_2d, suite_specs, store=store, warm_start=True
        )
        store.close()
        assert report_json(report) == baseline

    def test_sharded_kill_resume_byte_identical(
        self, suite_world_2d, suite_specs, baseline, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ChaosKill):
            self._run(
                suite_world_2d, suite_specs, workers=2, store=store,
                kill=self.KILL_AT,
            )
        report = self._run(
            suite_world_2d, suite_specs, workers=2, store=store,
            warm_start=True,
        )
        store.close()
        assert report_json(report) == baseline
