"""Tests for repro.perf: vectorized paths must match the scalar reference."""

import numpy as np
import pytest

from repro.cloud.locations import RTTTargets
from repro.core.config import BlameItConfig
from repro.core.passive import PassiveLocalizer
from repro.core.pipeline import BlameItPipeline
from repro.core.quartet import Quartet, QuartetBatch
from repro.core.thresholds import ExpectedRTTLearner, ExpectedRTTTable
from repro.net.geo import Region
from repro.perf.batch import BatchQuartetGenerator
from repro.perf.sharded import ShardedPipeline
from repro.sim.scenario import Scenario


def _random_quartets(rng: np.random.Generator, n: int) -> list[Quartet]:
    """A randomized bucket exercising every Algorithm-1 branch: several
    locations and paths, mixed mobile, RTTs straddling targets and
    expected RTTs, sub-gate sample counts, repeated prefixes across
    locations (ambiguity candidates)."""
    quartets = []
    for _ in range(n):
        quartets.append(
            Quartet(
                time=0,
                prefix24=int(rng.integers(0, 40)),
                location_id=f"edge-{rng.integers(0, 4)}",
                mobile=bool(rng.integers(0, 2)),
                mean_rtt_ms=float(rng.uniform(10.0, 120.0)),
                n_samples=int(rng.integers(1, 40)),
                users=int(rng.integers(1, 50)),
                client_asn=int(65000 + rng.integers(0, 6)),
                middle=((int(rng.integers(10, 14)),)),
                region=Region.USA,
            )
        )
    return quartets


def _random_table(rng: np.random.Generator) -> ExpectedRTTTable:
    cloud = {}
    middle = {}
    for loc in range(4):
        for mobile in (False, True):
            if rng.random() < 0.8:  # leave some keys unknown
                cloud[(f"edge-{loc}", mobile)] = float(rng.uniform(20.0, 80.0))
    for asn in range(10, 14):
        for mobile in (False, True):
            if rng.random() < 0.8:
                middle[((asn,), mobile)] = float(rng.uniform(20.0, 80.0))
    return ExpectedRTTTable(cloud=cloud, middle=middle)


def _targets() -> RTTTargets:
    return RTTTargets(by_region={Region.USA: (50.0, 80.0)})


class TestVectorizedPassive:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_on_random_buckets(self, seed):
        """Property test: identical results (order, blames, fractions)
        on randomized buckets covering all decision branches."""
        rng = np.random.default_rng(seed)
        quartets = _random_quartets(rng, 400)
        table = _random_table(rng)
        scalar = PassiveLocalizer(BlameItConfig(), _targets())
        vector = PassiveLocalizer(
            BlameItConfig(vectorized_passive=True), _targets()
        )
        assert vector.assign(quartets, table) == scalar.assign(quartets, table)

    def test_all_branches_hit(self):
        """The random buckets actually exercise every blame category."""
        rng = np.random.default_rng(0)
        blames = set()
        localizer = PassiveLocalizer(BlameItConfig(), _targets())
        for _ in range(8):
            results = localizer.assign(
                _random_quartets(rng, 400), _random_table(rng)
            )
            blames.update(r.blame for r in results)
        assert len(blames) == 5  # all Blame members

    def test_empty_input(self):
        vector = PassiveLocalizer(
            BlameItConfig(vectorized_passive=True), _targets()
        )
        assert vector.assign([], ExpectedRTTTable()) == []

    def test_batch_input_direct(self):
        """assign_batch on a pre-built columnar batch equals scalar."""
        rng = np.random.default_rng(3)
        quartets = _random_quartets(rng, 300)
        table = _random_table(rng)
        scalar = PassiveLocalizer(BlameItConfig(), _targets())
        vector = PassiveLocalizer(BlameItConfig(), _targets())
        batch = QuartetBatch.from_quartets(quartets)
        assert vector.assign_batch(batch, table) == scalar.assign(
            quartets, table
        )


class TestQuartetBatch:
    def test_round_trip(self):
        quartets = _random_quartets(np.random.default_rng(1), 100)
        assert QuartetBatch.from_quartets(quartets).to_quartets() == quartets

    def test_row_returns_original(self):
        quartets = _random_quartets(np.random.default_rng(2), 10)
        batch = QuartetBatch.from_quartets(quartets)
        assert batch.row(3) is quartets[3]

    def test_empty(self):
        batch = QuartetBatch.from_quartets([])
        assert len(batch) == 0
        assert batch.to_quartets() == []

    def test_empty_bucket_round_trips_through_columnar_ops(self):
        """Empty buckets flow through every columnar hot-path op."""
        batch = QuartetBatch.from_quartets([])
        assert len(batch.pair_codes()) == 0
        taken = batch.take(np.array([], dtype=np.int64))
        assert len(taken) == 0 and taken.to_quartets() == []

    def test_all_rows_sanitized_round_trip(self):
        """A batch whose rows are all invalid sanitizes to an empty batch
        that still round-trips (the columnar pipeline feeds such buckets
        straight into learning and folding)."""
        from repro.chaos.inject import sanitize_batch

        quartets = [
            q._replace(mean_rtt_ms=float("nan"))
            for q in _random_quartets(np.random.default_rng(7), 20)
        ]
        clean = sanitize_batch(QuartetBatch.from_quartets(quartets))
        assert len(clean) == 0
        assert clean.to_quartets() == []
        assert len(clean.pair_codes()) == 0


class TestBatchGenerator:
    def test_matches_scalar_generation(self, small_world):
        """Bit-identical quartets, including faulty and churning buckets."""
        scenario = Scenario.from_world(small_world)
        generator = BatchQuartetGenerator(scenario)
        for time in range(0, 288, 7):
            expected = scenario.generate_quartets(
                time, rng=np.random.default_rng((5, time))
            )
            got = generator.generate_quartets(
                time, rng=np.random.default_rng((5, time))
            )
            assert got == expected


class TestShardedPipeline:
    @pytest.fixture(scope="class")
    def trained(self, small_world):
        scenario = Scenario.from_world(small_world)
        learner = ExpectedRTTLearner(history_days=1)
        pipeline = BlameItPipeline(scenario, learner=learner)
        pipeline.warmup(0, 96, stride=4)
        return scenario, learner.table()

    def _config(self, **overrides) -> BlameItConfig:
        defaults = dict(history_days=1, background_interval_buckets=36)
        defaults.update(overrides)
        return BlameItConfig(**defaults)

    def test_matches_sequential_pipeline(self, trained):
        """Sharded report equals the sequential per-bucket-RNG pipeline:
        same quartet/blame counts, same issues, same alerts."""
        scenario, table = trained
        sequential = BlameItPipeline(
            scenario,
            config=self._config(),
            fixed_table=table,
            seed=11,
            rng_per_bucket=True,
        )
        expected = sequential.run(100, 160)
        sharded = ShardedPipeline(
            scenario,
            config=self._config(vectorized_passive=True),
            fixed_table=table,
            seed=11,
            n_workers=1,
            buckets_per_shard=17,  # misaligned with run_interval on purpose
        )
        got = sharded.run(100, 160)
        assert got.total_quartets == expected.total_quartets
        assert got.bad_quartets == expected.bad_quartets
        assert got.blame_counts == expected.blame_counts
        assert got.blame_counts_by_day == expected.blame_counts_by_day
        assert len(got.closed_middle) == len(expected.closed_middle)
        assert [
            (i.key, i.first_seen, i.last_seen) for i in got.closed_middle
        ] == [
            (i.key, i.first_seen, i.last_seen) for i in expected.closed_middle
        ]
        assert got.probes_on_demand == expected.probes_on_demand
        assert got.probes_background == expected.probes_background
        assert [(a.blame, a.location_id, a.culprit_asn) for a in got.alerts] == [
            (a.blame, a.location_id, a.culprit_asn) for a in expected.alerts
        ]

    def test_shard_partition_covers_range(self, trained):
        scenario, table = trained
        sharded = ShardedPipeline(
            scenario, fixed_table=table, n_workers=3, buckets_per_shard=None
        )
        shards = sharded._shards(10, 100)
        assert shards[0][0] == 10
        assert shards[-1][1] == 100
        for (_, prev_end), (next_start, _) in zip(shards, shards[1:]):
            assert prev_end == next_start
        assert sharded._shards(5, 5) == []
