"""Tests for repro.net.topology: graph structure and relationships."""

import numpy as np
import pytest

from repro.net.asn import ASTier, AutonomousSystem
from repro.net.geo import Region
from repro.net.topology import (
    ASTopology,
    CLOUD_ASN,
    RelationKind,
    TopologyParams,
    generate_topology,
)


class TestASTopology:
    def _two_as_topo(self):
        topo = ASTopology()
        topo.add_as(AutonomousSystem(1, "a", ASTier.TRANSIT))
        topo.add_as(AutonomousSystem(2, "b", ASTier.ACCESS))
        return topo

    def test_provider_customer_orientation(self):
        topo = self._two_as_topo()
        topo.add_provider_customer(1, 2)
        assert topo.is_provider_of(1, 2)
        assert not topo.is_provider_of(2, 1)
        assert topo.providers_of(2) == (1,)
        assert topo.customers_of(1) == (2,)
        assert topo.relation(1, 2) is RelationKind.PROVIDER_CUSTOMER

    def test_peering(self):
        topo = self._two_as_topo()
        topo.add_peering(1, 2)
        assert topo.peers_of(1) == (2,)
        assert topo.peers_of(2) == (1,)
        assert not topo.is_provider_of(1, 2)

    def test_duplicate_asn_rejected(self):
        topo = self._two_as_topo()
        with pytest.raises(ValueError):
            topo.add_as(AutonomousSystem(1, "dup", ASTier.ACCESS))

    def test_unknown_edge_endpoint_rejected(self):
        topo = self._two_as_topo()
        with pytest.raises(KeyError):
            topo.add_peering(1, 99)

    def test_remove_edge(self):
        topo = self._two_as_topo()
        topo.add_peering(1, 2)
        topo.remove_edge(1, 2)
        assert topo.peers_of(1) == ()


class TestGeneratedTopology:
    def test_counts(self, small_topology):
        topo = small_topology.topology
        assert len(small_topology.tier1_asns) == 4
        assert len(topo.ases_by_tier(ASTier.TRANSIT)) == 3 * 3
        assert len(topo.ases_by_tier(ASTier.ACCESS)) == 3 * 6
        assert len(topo.ases_by_tier(ASTier.CLOUD)) == 1

    def test_cloud_peers_with_all_tier1s(self, small_topology):
        topo = small_topology.topology
        for tier1 in small_topology.tier1_asns:
            assert tier1 in topo.peers_of(CLOUD_ASN)

    def test_tier1_full_mesh(self, small_topology):
        topo = small_topology.topology
        tier1s = small_topology.tier1_asns
        for a in tier1s:
            for b in tier1s:
                if a != b:
                    assert b in topo.peers_of(a)

    def test_every_access_as_has_a_provider(self, small_topology):
        topo = small_topology.topology
        for asys in topo.ases_by_tier(ASTier.ACCESS):
            assert topo.providers_of(asys.asn)

    def test_every_transit_buys_from_tier1(self, small_topology):
        topo = small_topology.topology
        tier1s = set(small_topology.tier1_asns)
        for asys in topo.ases_by_tier(ASTier.TRANSIT):
            assert set(topo.providers_of(asys.asn)) & tier1s

    def test_access_metros_match_region(self, small_topology):
        topo = small_topology.topology
        for region, asns in small_topology.access_asns_by_region.items():
            for asn in asns:
                for metro in topo.as_info(asn).metros:
                    assert metro.region is region

    def test_deterministic_by_seed(self):
        params = TopologyParams(regions=(Region.USA,), n_tier1=3)
        a = generate_topology(params, np.random.default_rng(5))
        b = generate_topology(params, np.random.default_rng(5))
        assert a.access_asns == b.access_asns
        assert sorted(a.topology.graph.edges) == sorted(b.topology.graph.edges)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TopologyParams(n_tier1=0)
        with pytest.raises(ValueError):
            TopologyParams(regions=())
        with pytest.raises(ValueError):
            TopologyParams(enterprise_fraction=1.5)
