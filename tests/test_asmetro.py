"""Tests for the ⟨AS, Metro⟩ grouping baseline."""

import numpy as np
import pytest

from repro.baselines.asmetro import as_metro_key, as_metro_quartets
from repro.core.grouping import consistent_path_fraction


class TestAsMetroKey:
    def test_int_tuple(self):
        key = as_metro_key(65000, "Chicago")
        assert isinstance(key, tuple)
        assert all(isinstance(v, int) for v in key)

    def test_distinct_metros_distinct_keys(self):
        assert as_metro_key(65000, "Chicago") != as_metro_key(65000, "Dallas")

    def test_unknown_metro(self):
        with pytest.raises(KeyError):
            as_metro_key(65000, "Gotham")


class TestRekeying:
    def test_rekey_preserves_other_fields(self, small_scenario, small_world):
        quartets = small_scenario.generate_quartets(150, np.random.default_rng(0))
        rekeyed = as_metro_quartets(quartets, small_world.population)
        assert len(rekeyed) == len(quartets)
        for before, after in zip(quartets, rekeyed):
            assert after.middle == as_metro_key(
                before.client_asn,
                small_world.population.get(before.prefix24).metro.name,
            )
            assert after._replace(middle=before.middle) == before

    def test_as_metro_groups_mix_paths(self, small_scenario, small_world):
        """The §4.2 rationale: ⟨AS, Metro⟩ groups often span multiple BGP
        paths, while BGP-path groups are single-path by construction."""
        quartets = small_scenario.generate_quartets(150, np.random.default_rng(0))
        groups: dict = {}
        for quartet in quartets:
            client = small_world.population.get(quartet.prefix24)
            key = as_metro_key(client.asn, client.metro.name)
            groups.setdefault(key, set()).add((quartet.location_id, quartet.middle))
        fraction = consistent_path_fraction(groups)
        assert fraction < 1.0  # some groups mix paths
