"""Golden regression test for the scenario-suite scorecard.

The canonical suite world's full scorecard — per-family accuracies,
blame confusion matrix, per-case outcomes, and the naive vs
mitigation-aware ranking records — is checked in at
``tests/golden/validation_scorecard.json``. Any drift in incident
generation, suite construction, the pipeline, or scoring fails this
test with a unified diff.

Regenerate (only after an *intentional* behavior change)::

    PYTHONPATH=src:tests python -m test_golden_scorecard
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

from repro.analysis.validation import (
    suite_world_params,
    validate_scenario_suite,
)
from repro.sim.incidents import ADVERSARIAL_ARCHETYPES
from repro.sim.scenario import build_world

GOLDEN_PATH = Path(__file__).parent / "golden" / "validation_scorecard.json"

#: Mirrors the benchmark and the CLI default so all three surfaces agree.
SUITE_SEED = 7


def build_golden_scorecard(world=None) -> dict:
    """Run the canonical suite and return its scorecard."""
    world = world or build_world(suite_world_params())
    return validate_scenario_suite(world, seed=SUITE_SEED).scorecard


def canonical_json(scorecard: dict) -> str:
    """The scorecard as deterministic, diff-friendly JSON."""
    return json.dumps(scorecard, indent=2, sort_keys=True) + "\n"


def golden_diff(expected: str, got: str) -> str:
    return "".join(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            got.splitlines(keepends=True),
            fromfile="tests/golden/validation_scorecard.json",
            tofile="current run",
            n=3,
        )
    )


class TestGoldenScorecard:
    def test_scorecard_matches_golden(self, suite_world):
        assert GOLDEN_PATH.exists(), (
            "golden scorecard missing; regenerate with "
            "`PYTHONPATH=src:tests python -m test_golden_scorecard`"
        )
        got = canonical_json(build_golden_scorecard(suite_world))
        expected = GOLDEN_PATH.read_text(encoding="utf-8")
        if got != expected:
            diff = golden_diff(expected, got)
            raise AssertionError(
                "suite scorecard drifted from the golden file; if the "
                "change is intentional, regenerate with "
                "`PYTHONPATH=src:tests python -m test_golden_scorecard`\n"
                + diff
            )

    def test_golden_scorecard_is_nontrivial(self):
        scorecard = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert scorecard["overall"]["incidents"] > 0
        families = set(scorecard["families"])
        # Every adversarial family must actually be present — a builder
        # silently falling back to a paper-era shape would drop it.
        assert {f.value for f in ADVERSARIAL_ARCHETYPES} <= families
        # Every mixed case records a naive vs mitigation-aware flip.
        assert scorecard["impact_ranking"], "no mixed ranking entries"
        for entry in scorecard["impact_ranking"]:
            assert entry["rankings_disagree"], entry["family"]


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        canonical_json(build_golden_scorecard()), encoding="utf-8"
    )
    print(f"golden scorecard written to {GOLDEN_PATH}")
