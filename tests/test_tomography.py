"""Tests for repro.baselines.tomography, incl. the §4.1 infeasibility."""

import pytest

from repro.baselines.tomography import (
    BooleanTomography,
    LinearTomography,
    PathObservation,
)


def _two_cloud_k_client_observations(k: int = 4):
    """The exact §4.1 setting: clouds c1, c2; middles m1, m2; clients
    p1..pk; observations d_ij = l_ci + l_mi + l_pj."""
    cloud_latency = {"c1": 3.0, "c2": 5.0}
    middle_latency = {"m1": 10.0, "m2": 7.0}
    client_latency = {f"p{j}": 2.0 + j for j in range(1, k + 1)}
    observations = []
    for ci, mi in (("c1", "m1"), ("c2", "m2")):
        for pj in client_latency:
            rtt = cloud_latency[ci] + middle_latency[mi] + client_latency[pj]
            observations.append(PathObservation(segments=(ci, mi, pj), rtt_ms=rtt))
    return observations


class TestLinearTomography:
    def test_rank_deficiency_positive(self):
        """§4.1: 2k equations, k+4 unknowns, yet unsolvable — the design
        matrix is rank deficient."""
        tomography = LinearTomography(_two_cloud_k_client_observations())
        assert tomography.rank_deficiency() >= 2

    def test_individual_segments_not_identifiable(self):
        tomography = LinearTomography(_two_cloud_k_client_observations())
        assert not tomography.identifiable({"c1": 1.0})
        assert not tomography.identifiable({"m1": 1.0})
        assert not tomography.identifiable({"p1": 1.0})

    def test_footnote4_composites_identifiable(self):
        """Footnote 4: lc1+lm1-lc2-lm2 and lps-lpt are solvable."""
        tomography = LinearTomography(_two_cloud_k_client_observations())
        assert tomography.identifiable({"c1": 1.0, "m1": 1.0, "c2": -1.0, "m2": -1.0})
        assert tomography.identifiable({"p1": 1.0, "p2": -1.0})

    def test_lstsq_fits_observations_but_not_truth(self):
        """A least-squares solution reproduces the RTTs while getting the
        per-segment values wrong — the danger of ignoring rank."""
        observations = _two_cloud_k_client_observations()
        tomography = LinearTomography(observations)
        solution = tomography.solve()
        for obs in observations:
            fitted = sum(solution[s] for s in obs.segments)
            assert fitted == pytest.approx(obs.rtt_ms, abs=1e-6)
        # But the individual cloud latency need not equal the true 3.0.
        # (Minimum-norm picks one member of the solution family.)
        assert set(solution) == set(tomography.columns)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LinearTomography([])


class TestBooleanTomography:
    def test_single_bad_segment_inferred(self):
        observations = [
            PathObservation(("c1", "m1", "p1"), 100.0, bad=True),
            PathObservation(("c1", "m1", "p2"), 100.0, bad=True),
            PathObservation(("c1", "m2", "p3"), 10.0, bad=False),
        ]
        blamed = BooleanTomography(observations).infer_bad_segments()
        assert blamed == {"m1"}  # c1 and p* are exonerated or larger

    def test_good_paths_exonerate(self):
        """Segments seen on good paths are removed from candidacy."""
        observations = [
            PathObservation(("c1", "m1", "p1"), 100.0, bad=True),
            PathObservation(("c1", "m2", "p2"), 10.0, bad=False),  # clears c1
            PathObservation(("c2", "m1", "p3"), 10.0, bad=False),  # clears m1
        ]
        blamed = BooleanTomography(observations).infer_bad_segments()
        assert blamed == {"p1"}  # the only candidate left

    def test_all_good(self):
        observations = [PathObservation(("c1", "m1", "p1"), 10.0, bad=False)]
        assert BooleanTomography(observations).infer_bad_segments() == frozenset()

    def test_smallest_set_preferred(self):
        """Insight-2 formalized: one shared segment beats many clients."""
        observations = [
            PathObservation(("c1", "m1", f"p{j}"), 100.0, bad=True) for j in range(5)
        ]
        blamed = BooleanTomography(observations).infer_bad_segments()
        assert len(blamed) == 1
        assert blamed <= {"c1", "m1"}

    def test_inconsistent_raises(self):
        observations = [
            PathObservation(("c1", "m1", "p1"), 100.0, bad=True),
            PathObservation(("c1",), 10.0, bad=False),
            PathObservation(("m1",), 10.0, bad=False),
            PathObservation(("p1",), 10.0, bad=False),
        ]
        with pytest.raises(ValueError):
            BooleanTomography(observations).infer_bad_segments()

    def test_greedy_large_universe(self):
        observations = [
            PathObservation((f"c{i}", f"m{i}", f"p{i}"), 100.0, bad=True)
            for i in range(30)
        ]
        blamed = BooleanTomography(observations, max_exact=4).infer_bad_segments()
        # Each bad path needs at least one blamed segment.
        for obs in observations:
            assert set(obs.segments) & blamed
