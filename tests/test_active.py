"""Tests for repro.core.active: issue tracking, budgets, prioritization."""

import numpy as np
import pytest

from repro.cloud.traceroute import TracerouteEngine, TracerouteView
from repro.core.active import IssueTracker, OnDemandProber, ProbeBudget
from repro.core.blame import Blame, BlameResult
from repro.core.prediction import ClientCountPredictor, DurationPredictor
from repro.core.quartet import Quartet
from repro.net.geo import Region


def _result(blame=Blame.MIDDLE, prefix=1, loc="edge-A", middle=(10,), time=0, users=10):
    quartet = Quartet(
        time=time,
        prefix24=prefix,
        location_id=loc,
        mobile=False,
        mean_rtt_ms=90.0,
        n_samples=20,
        users=users,
        client_asn=65000,
        middle=middle,
        region=Region.USA,
    )
    return BlameResult(quartet=quartet, blame=blame)


class TestIssueTracker:
    def test_opens_issue_for_middle_blame(self):
        tracker = IssueTracker()
        open_issues, closed = tracker.update(0, [_result()])
        assert len(open_issues) == 1
        assert closed == []
        issue = open_issues[0]
        assert issue.key == ("edge-A", (10,))
        assert issue.first_seen == 0

    def test_ignores_other_blames(self):
        tracker = IssueTracker()
        open_issues, _ = tracker.update(0, [_result(blame=Blame.CLIENT)])
        assert open_issues == []

    def test_continuity_extends_issue(self):
        tracker = IssueTracker()
        tracker.update(0, [_result(time=0)])
        open_issues, closed = tracker.update(1, [_result(time=1)])
        assert len(open_issues) == 1
        assert not closed
        assert open_issues[0].duration == 2

    def test_gap_closes_issue(self):
        tracker = IssueTracker(gap_buckets=1)
        tracker.update(0, [_result(time=0)])
        open_issues, closed = tracker.update(2, [])  # silence > gap
        assert open_issues == []
        assert len(closed) == 1
        assert closed[0].duration == 1

    def test_reopened_issue_is_new(self):
        tracker = IssueTracker(gap_buckets=1)
        tracker.update(0, [_result(time=0)])
        tracker.update(3, [])  # closes
        open_issues, _ = tracker.update(5, [_result(time=5)])
        assert len(open_issues) == 1
        assert open_issues[0].first_seen == 5
        serials = {i.serial for i in tracker.closed_issues} | {
            i.serial for i in open_issues
        }
        assert len(serials) == 2

    def test_accumulates_prefixes_and_users(self):
        tracker = IssueTracker()
        tracker.update(0, [_result(prefix=1, users=10), _result(prefix=2, users=20)])
        open_issues, _ = tracker.update(1, [_result(prefix=1, users=10, time=1)])
        issue = open_issues[0]
        assert issue.prefixes == {1, 2}
        assert issue.users_by_bucket == {0: 30, 1: 10}
        assert issue.total_client_time == pytest.approx(40.0)
        assert issue.representative_prefix() == 1

    def test_close_all(self):
        tracker = IssueTracker()
        tracker.update(0, [_result()])
        remaining = tracker.close_all()
        assert len(remaining) == 1
        assert tracker.open_issues == {}


class TestProbeBudget:
    def test_per_location_limit(self):
        budget = ProbeBudget(per_location_per_window=2)
        budget.start_window()
        assert budget.try_consume("edge-A")
        assert budget.try_consume("edge-A")
        assert not budget.try_consume("edge-A")
        assert budget.try_consume("edge-B")  # independent
        assert budget.denied == 1

    def test_window_reset(self):
        budget = ProbeBudget(per_location_per_window=1)
        budget.start_window()
        assert budget.try_consume("edge-A")
        budget.start_window()
        assert budget.try_consume("edge-A")


class _FlatOracle:
    def traceroute_view(self, location_id, prefix24, time):
        return TracerouteView(path=(1, 10, 65000), cumulative_ms=(2.0, 10.0, 20.0))


def _prober(budget=5) -> OnDemandProber:
    engine = TracerouteEngine(_FlatOracle(), np.random.default_rng(0), hop_noise_ms=0.0)
    return OnDemandProber(
        engine=engine,
        duration_predictor=DurationPredictor(),
        client_predictor=ClientCountPredictor(),
        budget=ProbeBudget(budget),
    )


class TestOnDemandProber:
    def _issues(self, tracker_time=0, n=3):
        tracker = IssueTracker()
        results = [
            _result(prefix=i, middle=(10 + i,), users=10 * (i + 1), time=tracker_time)
            for i in range(n)
        ]
        open_issues, _ = tracker.update(tracker_time, results)
        return open_issues

    def test_priority_uses_predictions(self):
        prober = _prober()
        issues = self._issues()
        prober.client_predictor.observe(issues[0].key, 0, 1000)
        prober.client_predictor.observe(issues[1].key, 0, 10)
        assert prober.priority(issues[0], 0) > prober.priority(issues[1], 0)

    def test_budget_caps_probes(self):
        prober = _prober(budget=1)
        issues = self._issues(n=4)  # all at edge-A
        probed = prober.probe_window(0, issues)
        assert len(probed) == 1
        assert prober.probes_issued == 1

    def test_highest_priority_wins_budget(self):
        prober = _prober(budget=1)
        issues = self._issues(n=3)
        for index, issue in enumerate(issues):
            prober.client_predictor.observe(issue.key, 0, 10 ** index)
        probed = prober.probe_window(0, issues)
        assert probed[0].issue_key == issues[-1].key
        assert probed[0].priority > 0

    def test_issue_probed_once(self):
        prober = _prober()
        issues = self._issues()
        first = prober.probe_window(0, issues)
        second = prober.probe_window(1, issues)
        assert len(first) == 3
        assert second == []

    def test_probe_carries_first_seen(self):
        prober = _prober()
        issues = self._issues(tracker_time=7)
        probed = prober.probe_window(8, issues)
        assert all(p.issue_first_seen == 7 for p in probed)


class TestIssueTrackerGapParity:
    """Displacement and sweep must close a run under the same strict
    `> gap_buckets` condition (mirrors TestKeyedTrackerGapSemantics for
    the middle-issue tracker)."""

    def test_displacement_agrees_with_sweep(self):
        """A middle blame recurring just past the gap starts a new issue
        instead of extending a run the sweep would already have closed."""
        tracker = IssueTracker(gap_buckets=1)
        tracker.update(0, [_result(time=0)])
        open_issues, closed = tracker.update(2, [_result(time=2)])
        assert len(closed) == 1
        assert closed[0].first_seen == 0
        assert closed[0].last_seen == 0
        assert len(open_issues) == 1
        assert open_issues[0].first_seen == 2
        assert open_issues[0].serial != closed[0].serial

    def test_blame_at_gap_extends(self):
        """Silence of exactly gap_buckets does not end the run."""
        tracker = IssueTracker(gap_buckets=1)
        tracker.update(0, [_result(time=0)])
        open_issues, closed = tracker.update(1, [_result(time=1)])
        assert closed == []
        assert open_issues[0].first_seen == 0
        assert open_issues[0].duration == 2

    def test_displacement_duration_matches_swept_duration(self):
        """The same quiet spell yields the same issue duration whether
        the close came from a sweep or a displacing blame."""
        swept = IssueTracker(gap_buckets=1)
        swept.update(0, [_result(time=0)])
        _, swept_closed = swept.update(2, [])
        displaced = IssueTracker(gap_buckets=1)
        displaced.update(0, [_result(time=0)])
        _, displaced_closed = displaced.update(2, [_result(time=2)])
        assert [i.duration for i in swept_closed] == [
            i.duration for i in displaced_closed
        ]


class TestProbeBudgetWindows:
    def test_denied_resets_per_window(self):
        budget = ProbeBudget(per_location_per_window=1)
        budget.start_window()
        assert budget.try_consume("edge-A")
        assert not budget.try_consume("edge-A")
        assert not budget.try_consume("edge-A")
        assert budget.denied == 2
        budget.start_window()
        assert budget.denied == 0
        assert budget.try_consume("edge-A")
        assert not budget.try_consume("edge-A")
        assert budget.denied == 1
        assert budget.denied_total == 3


class TestPriorityCaching:
    def test_priority_computed_once_per_candidate(self, monkeypatch):
        prober = _prober()
        issues = TestOnDemandProber()._issues(n=3)
        calls = []
        original = OnDemandProber.priority

        def counting(self, issue, now):
            calls.append(issue.key)
            return original(self, issue, now)

        monkeypatch.setattr(OnDemandProber, "priority", counting)
        probed = prober.probe_window(0, issues)
        assert len(probed) == 3
        assert len(calls) == 3  # once per candidate, not per probe

    def test_reported_priority_matches_sort_priority(self):
        prober = _prober()
        issues = TestOnDemandProber()._issues(n=3)
        for index, issue in enumerate(issues):
            prober.client_predictor.observe(issue.key, 0, 10 ** (index + 1))
        probed = prober.probe_window(0, issues)
        for item in probed:
            issue = next(i for i in issues if i.key == item.issue_key)
            assert item.priority == pytest.approx(prober.priority(issue, 0))

    def test_probe_window_records_metrics(self):
        from repro.obs import MetricsRegistry

        engine = TracerouteEngine(
            _FlatOracle(), np.random.default_rng(0), hop_noise_ms=0.0
        )
        metrics = MetricsRegistry()
        prober = OnDemandProber(
            engine=engine,
            duration_predictor=DurationPredictor(),
            client_predictor=ClientCountPredictor(),
            budget=ProbeBudget(1),
            metrics=metrics,
        )
        issues = TestOnDemandProber()._issues(n=3)  # all share edge-A
        prober.probe_window(0, issues)
        counters = metrics.snapshot()["counters"]
        assert counters["probe.on_demand.issued"] == 1
        assert counters["probe.on_demand.denied"] == 2
