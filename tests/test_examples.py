"""Smoke tests for the examples/ scripts.

Every example must at least compile, and the probe-budget planning
example (which documents the three probe planners side by side) must run
end to end in its ``--fast`` mode and show the clustered planner
actually saving on-demand traceroutes.
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"


def _example_files() -> list[pathlib.Path]:
    return sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in _example_files()}
    assert "probe_budget_planning.py" in names
    assert "quickstart.py" in names


@pytest.mark.parametrize(
    "path", _example_files(), ids=lambda path: path.name
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_probe_budget_planning_fast_mode():
    """The planner-comparison example runs end to end and prints one
    row per planner, with 'clustered' spending no more probes than
    'paper' at the same budget."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "probe_budget_planning.py"),
         "--fast"],
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stderr
    rows = {}
    for line in result.stdout.splitlines():
        parts = line.split()
        if parts and parts[0] in ("naive", "paper", "clustered"):
            rows[parts[0]] = int(parts[2])  # on-demand probe count
    assert set(rows) == {"naive", "paper", "clustered"}
    assert rows["clustered"] <= rows["paper"]
    assert "always-on strawman" in result.stdout
