"""Tests for repro.core.probeplan: co-anomaly history, clustering,
planner plumbing through the prober, pipeline, and checkpoint store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cloud.traceroute import TracerouteEngine, TracerouteView
from repro.core.active import IssueTracker, OnDemandProber, ProbeBudget
from repro.core.blame import Blame, BlameResult
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.core.prediction import ClientCountPredictor, DurationPredictor
from repro.core.probeplan import (
    ClusteredPlanner,
    CoAnomalyHistory,
    NaivePlanner,
    PaperPlanner,
    make_planner,
)
from repro.core.quartet import Quartet
from repro.core.thresholds import ExpectedRTTLearner
from repro.io import report_to_dict
from repro.net.geo import Region
from repro.sim.scenario import Scenario

K_A = ("edge-A", (10, 20))
K_B = ("edge-B", (10, 30))
K_C = ("edge-C", (10, 40))
K_D = ("edge-D", (99,))  # path disjoint from the others


def _history(windows, maxlen=8) -> CoAnomalyHistory:
    history = CoAnomalyHistory(maxlen)
    for window in windows:
        history.observe(window)
    return history


class TestCoAnomalyHistory:
    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            CoAnomalyHistory(0)

    def test_empty_windows_are_skipped(self):
        history = _history([set(), {K_A}, set()])
        assert len(history) == 1

    def test_jaccard_similarity(self):
        history = _history([{K_A, K_B}, {K_A, K_B}, {K_A}, {K_B, K_C}])
        # A and B co-occur in 2 of 4 windows: 2 / (3 + 3 - 2).
        assert history.similarity(K_A, K_B) == pytest.approx(0.5)
        assert history.similarity(K_A, K_C) == 0.0
        assert history.similarity(K_A, ("edge-X", (1,))) == 0.0

    def test_similarity_on_empty_history_is_zero(self):
        assert CoAnomalyHistory(4).similarity(K_A, K_B) == 0.0

    def test_ring_evicts_oldest_windows(self):
        history = _history([{K_A, K_B}] + [{K_C}] * 3, maxlen=3)
        assert len(history) == 3
        assert history.similarity(K_A, K_B) == 0.0  # evidence fell off

    def test_state_dict_roundtrip_is_json_safe(self):
        history = _history([{K_A, K_B}, {K_B, K_C}], maxlen=5)
        state = json.loads(json.dumps(history.state_dict()))
        restored = CoAnomalyHistory(1)
        restored.load_state_dict(state)
        assert restored.maxlen == 5
        assert len(restored) == 2
        for pair in ((K_A, K_B), (K_B, K_C), (K_A, K_C)):
            assert restored.similarity(*pair) == history.similarity(*pair)


def _blame_result(key, prefix=1, users=10, time=0) -> BlameResult:
    location_id, middle = key
    quartet = Quartet(
        time=time,
        prefix24=prefix,
        location_id=location_id,
        mobile=False,
        mean_rtt_ms=90.0,
        n_samples=20,
        users=users,
        client_asn=65000,
        middle=middle,
        region=Region.USA,
    )
    return BlameResult(quartet=quartet, blame=Blame.MIDDLE)


def _issues(*keys, time=0):
    """Open MiddleIssues for the given keys, one prefix each."""
    tracker = IssueTracker()
    results = [
        _blame_result(key, prefix=index + 1, time=time)
        for index, key in enumerate(keys)
    ]
    open_issues, _ = tracker.update(time, results)
    return sorted(open_issues, key=lambda issue: issue.key)


def _ranked(issues, priorities=None):
    """(priority, issue) pairs in the paper's (-priority, key) order."""
    priorities = priorities or {}
    pairs = [(priorities.get(issue.key, 1.0), issue) for issue in issues]
    return sorted(pairs, key=lambda pair: (-pair[0], pair[1].key))


class TestClusteredPlanner:
    def test_rejects_nonpositive_floor(self):
        with pytest.raises(ValueError):
            ClusteredPlanner(CoAnomalyHistory(4), floor=0.0)

    def test_co_anomalous_shared_as_targets_cluster(self):
        planner = ClusteredPlanner(
            _history([{K_A, K_B}, {K_A, K_B}]), floor=0.6
        )
        groups = planner.plan(_ranked(_issues(K_A, K_B, K_C)))
        keys = [{m.key for m in g.members} for g in groups]
        assert {K_A, K_B} in keys
        assert {K_C} in keys

    def test_disjoint_paths_never_merge(self):
        # Perfect co-occurrence, but no shared middle AS: a verdict
        # names one AS, so attribution across them could not be valid.
        planner = ClusteredPlanner(_history([{K_A, K_D}] * 3), floor=0.6)
        groups = planner.plan(_ranked(_issues(K_A, K_D)))
        assert all(len(g.members) == 1 for g in groups)

    def test_complete_linkage_keeps_weak_chain_apart(self):
        # A~B always together; C joins them only once in four windows,
        # so every C pair sits at 0.25 — below the floor.  Single
        # linkage would chain C in; complete linkage must not.
        planner = ClusteredPlanner(
            _history([{K_A, K_B, K_C}, {K_A, K_B}, {K_A, K_B}, {K_A, K_B}]),
            floor=0.6,
        )
        groups = planner.plan(_ranked(_issues(K_A, K_B, K_C)))
        keys = sorted(({m.key for m in g.members} for g in groups), key=sorted)
        assert keys == [{K_A, K_B}, {K_C}]

    def test_representative_is_highest_priority_member(self):
        planner = ClusteredPlanner(_history([{K_A, K_B}] * 2), floor=0.6)
        groups = planner.plan(
            _ranked(_issues(K_A, K_B), priorities={K_A: 1.0, K_B: 9.0})
        )
        assert len(groups) == 1
        assert groups[0].representative.key == K_B
        assert groups[0].priority == 9.0
        assert [m.key for m in groups[0].attributed] == [K_A]

    def test_plan_is_input_order_invariant(self):
        history_windows = [{K_A, K_B, K_C}, {K_A, K_B}, {K_B, K_C}]
        priorities = {K_A: 3.0, K_B: 2.0, K_C: 1.0}
        plans = []
        for order in ((K_A, K_B, K_C), (K_C, K_A, K_B), (K_B, K_C, K_A)):
            planner = ClusteredPlanner(_history(history_windows), floor=0.5)
            ranked = _ranked(_issues(*order), priorities=priorities)
            plans.append(
                [
                    (g.representative.key, [m.key for m in g.members])
                    for g in planner.plan(ranked)
                ]
            )
        assert plans[0] == plans[1] == plans[2]

    def test_floor_above_one_is_exact_paper_plan(self):
        issues = _issues(K_A, K_B, K_C)
        ranked = _ranked(issues, priorities={K_A: 2.0, K_B: 5.0, K_C: 1.0})
        clustered = ClusteredPlanner(_history([{K_A, K_B, K_C}] * 4), 1.01)
        paper = PaperPlanner(CoAnomalyHistory(4))
        def as_keys(groups):
            return [
                (g.representative.key, g.priority, [m.key for m in g.members])
                for g in groups
            ]

        assert as_keys(clustered.plan(ranked)) == as_keys(paper.plan(ranked))

    def test_naive_planner_ignores_priority(self):
        issues = _issues(K_A, K_B)
        ranked = _ranked(issues, priorities={K_A: 1.0, K_B: 9.0})
        groups = NaivePlanner(CoAnomalyHistory(4)).plan(ranked)
        assert [g.representative.key for g in groups] == [K_A, K_B]


class TestPlannerState:
    def test_make_planner_dispatch(self):
        for kind, cls in (
            ("naive", NaivePlanner),
            ("paper", PaperPlanner),
            ("clustered", ClusteredPlanner),
        ):
            planner = make_planner(BlameItConfig(probe_planner=kind))
            assert type(planner) is cls
            assert planner.kind == kind
            assert planner.history.maxlen == 48

    def test_state_roundtrip_preserves_clustering(self):
        source = make_planner(
            BlameItConfig(probe_planner="clustered", probe_history_windows=6)
        )
        for _ in range(3):
            source.observe_window({K_A, K_B})
        target = make_planner(BlameItConfig(probe_planner="clustered"))
        target.load_state_dict(json.loads(json.dumps(source.state_dict())))
        assert target.history.maxlen == 6
        ranked = _ranked(_issues(K_A, K_B))
        assert [
            [m.key for m in g.members] for g in target.plan(ranked)
        ] == [[m.key for m in g.members] for g in source.plan(ranked)]


class _FlatOracle:
    def traceroute_view(self, location_id, prefix24, time):
        return TracerouteView(path=(1, 10, 65000), cumulative_ms=(2.0, 10.0, 20.0))


def _prober(planner, budget=5, metrics=None) -> OnDemandProber:
    engine = TracerouteEngine(
        _FlatOracle(), np.random.default_rng(0), hop_noise_ms=0.0
    )
    return OnDemandProber(
        engine=engine,
        duration_predictor=DurationPredictor(),
        client_predictor=ClientCountPredictor(),
        budget=ProbeBudget(budget),
        metrics=metrics,
        planner=planner,
    )


class TestProberWithPlanner:
    def test_cluster_spends_one_slot_and_attributes_members(self):
        planner = ClusteredPlanner(_history([{K_A, K_B}] * 2), floor=0.6)
        prober = _prober(planner)
        issues = _issues(K_A, K_B, K_C)
        probed = prober.probe_window(0, issues)
        assert prober.probes_issued == 2  # one per cluster, not per issue
        by_key = {p.issue_key: p for p in probed}
        (cluster_rep,) = [p for p in probed if p.attributed]
        assert set(cluster_rep.attributed) <= {K_A, K_B}
        assert K_C in by_key and by_key[K_C].attributed == ()
        # Every member is now marked probed — no re-probe next window.
        assert prober.probe_window(1, issues) == []

    def test_denied_representative_leaves_members_unprobed(self):
        # Both clustered issues live at the same location; budget 0
        # denies the representative, so neither member is marked probed.
        keys = (("edge-A", (10, 20)), ("edge-A", (10, 30)))
        planner = ClusteredPlanner(_history([set(keys)] * 2), floor=0.6)
        prober = _prober(planner, budget=0)
        issues = _issues(*keys)
        assert prober.probe_window(0, issues) == []
        assert all(not issue.probed for issue in issues)

    def test_clustered_metrics_recorded(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        planner = ClusteredPlanner(_history([{K_A, K_B}] * 2), floor=0.6)
        prober = _prober(planner, metrics=metrics)
        prober.probe_window(0, _issues(K_A, K_B, K_C))
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["probe.plan.clusters"] == 1
        assert snapshot["counters"]["probe.plan.saved"] == 1
        assert snapshot["histograms"]["probe.plan.cluster_size"]["count"] == 2

    def test_paper_planner_records_no_plan_metrics(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        prober = _prober(PaperPlanner(CoAnomalyHistory(4)), metrics=metrics)
        prober.probe_window(0, _issues(K_A, K_B))
        counters = metrics.snapshot()["counters"]
        assert not any(name.startswith("probe.plan.") for name in counters)


class TestConfigKnobs:
    def test_unknown_planner_rejected(self):
        with pytest.raises(ValueError):
            BlameItConfig(probe_planner="greedy")

    def test_bad_floor_and_history_rejected(self):
        with pytest.raises(ValueError):
            BlameItConfig(probe_cluster_floor=0.0)
        with pytest.raises(ValueError):
            BlameItConfig(probe_history_windows=0)


def _pipeline_report(world, config):
    """The golden-style fixed run under the given config."""
    scenario = Scenario.from_world(world)
    learner = ExpectedRTTLearner(history_days=1)
    trainer = BlameItPipeline(scenario, config=config, learner=learner)
    trainer.warmup(0, 96, stride=4)
    pipeline = BlameItPipeline(
        scenario,
        config=config,
        fixed_table=learner.table(),
        seed=11,
        rng_per_bucket=True,
    )
    report = pipeline.run(100, 160)
    return pipeline, report


class TestClusteringDisabledIsExactNoOp:
    """Satellite regression: floor > 1.0 means the clustered planner is
    byte-for-byte the paper planner — same report, same budget ledger."""

    def test_report_and_budget_identical(self, small_world):
        base = dict(history_days=1, background_interval_buckets=36)
        paper_pipeline, paper_report = _pipeline_report(
            small_world, BlameItConfig(**base, probe_planner="paper")
        )
        clustered_pipeline, clustered_report = _pipeline_report(
            small_world,
            BlameItConfig(
                **base, probe_planner="clustered", probe_cluster_floor=1.01
            ),
        )
        paper_json = json.dumps(report_to_dict(paper_report), sort_keys=True)
        clustered_json = json.dumps(
            report_to_dict(clustered_report), sort_keys=True
        )
        assert clustered_json == paper_json
        for attr in ("denied", "denied_total"):
            assert getattr(clustered_pipeline.on_demand.budget, attr) == (
                getattr(paper_pipeline.on_demand.budget, attr)
            )
        assert (
            clustered_pipeline.on_demand.probes_issued
            == paper_pipeline.on_demand.probes_issued
        )
        assert not any(
            item.category == "cluster-attributed"
            for item in clustered_report.localized
        )


@pytest.fixture(scope="module")
def faulty_world():
    """Two-day, two-region world with enough middle faults that probe
    windows actually feed the co-anomaly history (the shared small and
    multi-day worlds stay middle-quiet over the test window)."""
    from repro.sim.faults import FaultRates
    from repro.sim.scenario import ScenarioParams, build_world

    return build_world(
        ScenarioParams(
            seed=23,
            regions=(Region.USA, Region.EUROPE),
            duration_days=2,
            locations_per_region=2,
            fault_rates=FaultRates(middle_per_day=10.0),
        )
    )


def _clustered_config() -> BlameItConfig:
    return BlameItConfig(
        history_days=1,
        background_interval_buckets=36,
        probe_planner="clustered",
        probe_cluster_floor=0.5,
        probe_history_windows=12,
    )


def _clustered_run(world, *, workers=None, store=None, warm_start=False,
                   kill=None):
    """One clustered-planner run crossing a day boundary (240..400)."""
    from repro.chaos import FaultPlan
    from repro.perf.sharded import ShardedPipeline

    scenario = Scenario.from_world(world)
    chaos = (
        FaultPlan(seed=1, kill_at_bucket=kill) if kill is not None else None
    )
    if workers is not None:
        pipeline = ShardedPipeline(
            scenario,
            config=_clustered_config(),
            seed=11,
            n_workers=workers,
            store=store,
            warm_start=warm_start,
            chaos=chaos,
        )
    else:
        pipeline = BlameItPipeline(
            scenario,
            config=_clustered_config(),
            seed=11,
            rng_per_bucket=True,
            store=store,
            warm_start=warm_start,
            chaos=chaos,
        )
    if not warm_start:
        pipeline.warmup(0, 96, stride=4)
    return pipeline, pipeline.run(240, 400)


def _digest(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


class TestClusteredPersistence:
    """Checkpoint schema v3: the planner's co-anomaly history rides
    along, so resumed and sharded clustered runs stay byte-identical."""

    @pytest.fixture(scope="class")
    def baseline(self, faulty_world) -> str:
        _, report = _clustered_run(faulty_world)
        return _digest(report)

    def test_checkpoint_roundtrips_planner_history(
        self, faulty_world, tmp_path
    ):
        from repro.store import CheckpointStore

        store = CheckpointStore(tmp_path)
        pipeline, _ = _clustered_run(faulty_world, store=store)
        saved = pipeline.on_demand.planner.state_dict()
        assert saved["kind"] == "clustered"
        assert len(saved["history"]["windows"]) > 0

        scenario = Scenario.from_world(faulty_world)
        resumed = BlameItPipeline(
            scenario,
            config=_clustered_config(),
            seed=11,
            rng_per_bucket=True,
            store=store,
            warm_start=True,
        )
        restored = resumed.on_demand.planner.state_dict()
        store.close()
        # The newest checkpoint lands at the last day boundary (288),
        # so the restored ring is a prefix of the final one.
        assert restored["kind"] == "clustered"
        windows = saved["history"]["windows"]
        assert restored["history"]["windows"] == (
            windows[: len(restored["history"]["windows"])]
        )

    def test_kill_resume_byte_identical(
        self, faulty_world, tmp_path, baseline
    ):
        from repro.chaos import ChaosKill
        from repro.store import CheckpointStore

        store = CheckpointStore(tmp_path)
        with pytest.raises(ChaosKill):
            _clustered_run(faulty_world, store=store, kill=288)
        _, report = _clustered_run(
            faulty_world, store=store, warm_start=True
        )
        store.close()
        assert _digest(report) == baseline

    def test_sharded_matches_sequential(self, faulty_world, baseline):
        _, report = _clustered_run(faulty_world, workers=2)
        assert _digest(report) == baseline
