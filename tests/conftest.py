"""Shared fixtures: small, fast worlds reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.geo import Region
from repro.net.topology import TopologyParams, generate_topology
from repro.sim.scenario import Scenario, ScenarioParams, build_world


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_params() -> ScenarioParams:
    """Two regions, two locations each, one simulated day."""
    return ScenarioParams(
        seed=42,
        regions=(Region.USA, Region.EUROPE),
        locations_per_region=2,
        duration_days=1,
    )


@pytest.fixture(scope="session")
def small_world(small_params):
    """A session-shared small world (read-only in tests)."""
    return build_world(small_params)


@pytest.fixture(scope="session")
def suite_params() -> ScenarioParams:
    """The canonical scenario-suite world (rings=3, fat sparse ring).

    Ring 2's membership misses EUROPE entirely, so European clients'
    ring-2 slots are served cross-region with real weight — required by
    the inter-region peering incident family. Kept in sync with
    :func:`repro.analysis.validation.suite_world_params`.
    """
    from repro.analysis.validation import suite_world_params

    return suite_world_params()


@pytest.fixture(scope="session")
def suite_world(suite_params):
    """A session-shared ringed world for scenario-suite tests."""
    return build_world(suite_params)


@pytest.fixture(scope="session")
def multi_day_params() -> ScenarioParams:
    """Two regions, one location each, three simulated days — the
    smallest world whose runs span multiple day-boundary table
    refreshes (checkpoint and sharded-refresh tests)."""
    return ScenarioParams(
        seed=42,
        regions=(Region.USA, Region.EUROPE),
        locations_per_region=1,
        duration_days=3,
    )


@pytest.fixture(scope="session")
def multi_day_world(multi_day_params):
    """A session-shared three-day world (read-only in tests)."""
    return build_world(multi_day_params)


@pytest.fixture(scope="session")
def small_scenario(small_world):
    """A fault-free, churn-free scenario over the small world.

    Tests must not mutate it; fault-specific tests build their own
    scenarios via :meth:`Scenario.with_faults` or direct construction.
    """
    return Scenario(small_world, (), ())


@pytest.fixture(scope="session")
def small_topology():
    """A generated AS topology with three regions."""
    params = TopologyParams(
        regions=(Region.USA, Region.EUROPE, Region.INDIA),
        n_tier1=4,
        transits_per_region=3,
        access_per_region=6,
    )
    return generate_topology(params, np.random.default_rng(7))
