"""Tests for anycast rings (§2.1 footnote 2)."""

import pytest

from repro.net.geo import Region, metro_distance_km
from repro.sim.scenario import ScenarioParams, _ring_members, _ring_shares, build_world


@pytest.fixture(scope="module")
def ringed_world():
    params = ScenarioParams(
        seed=42,
        regions=(Region.USA, Region.EUROPE),
        locations_per_region=2,
        duration_days=1,
        rings=2,
    )
    return build_world(params)


class TestRingHelpers:
    def test_single_ring_identity(self, ringed_world):
        members = _ring_members(ringed_world.locations, 1)
        assert members == [ringed_world.locations]
        assert _ring_shares(1, 0.3) == [1.0]

    def test_sparser_rings(self, ringed_world):
        members = _ring_members(ringed_world.locations, 3)
        assert len(members[1]) <= len(members[0])
        assert len(members[2]) <= len(members[1])
        for ring in members[1:]:
            assert set(ring) <= set(members[0])

    def test_shares_sum_to_one(self):
        for rings in (1, 2, 4):
            assert sum(_ring_shares(rings, 0.3)) == pytest.approx(1.0)


class TestRingedWorld:
    def test_slot_shares_still_sum_to_one(self, ringed_world):
        shares: dict[int, float] = {}
        for slot in ringed_world.slots:
            shares[slot.client.prefix24] = (
                shares.get(slot.client.prefix24, 0.0) + slot.share
            )
        for total in shares.values():
            assert total == pytest.approx(1.0)

    def test_more_slots_than_single_ring(self):
        base = ScenarioParams(
            seed=42, regions=(Region.USA, Region.EUROPE),
            locations_per_region=2, duration_days=1,
        )
        ringed = ScenarioParams(
            seed=42, regions=(Region.USA, Region.EUROPE),
            locations_per_region=2, duration_days=1, rings=2,
        )
        assert len(build_world(ringed).slots) > len(build_world(base).slots)

    def test_sparse_ring_serves_farther(self, ringed_world):
        """Some sparse-ring slots are served from a farther location than
        the client's overall nearest — the ring restriction at work."""
        farther = 0
        for slot in ringed_world.slots:
            nearest = min(
                metro_distance_km(loc.metro, slot.client.metro)
                for loc in ringed_world.locations
            )
            actual = metro_distance_km(slot.location.metro, slot.client.metro)
            if actual > nearest + 1.0:
                farther += 1
        assert farther > 0

    def test_assignments_are_consumer_ring(self, ringed_world):
        """The recorded assignment (used by incident tooling) is ring 0's."""
        for prefix, assignment in list(ringed_world.assignments.items())[:20]:
            client = ringed_world.population.get(prefix)
            nearest = min(
                ringed_world.locations,
                key=lambda loc: (
                    metro_distance_km(loc.metro, client.metro),
                    loc.location_id,
                ),
            )
            assert assignment.primary is nearest
