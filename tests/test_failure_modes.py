"""Failure-injection tests: the pipeline under hostile conditions.

Production systems meet withdrawn routes, empty windows, cold caches and
starved budgets; none of these may crash the pipeline or corrupt its
accounting.
"""

import numpy as np

from repro.core.blame import Blame
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.core.thresholds import ExpectedRTTTable
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.scenario import RerouteEvent, Scenario


class TestWithdrawnRoutes:
    def test_pipeline_survives_mass_withdrawal(self, small_world):
        """Withdrawing a popular announcement mid-run: probes fail, the
        affected clients vanish from telemetry, nothing crashes."""
        slot = small_world.slots[0]
        withdraw = RerouteEvent(
            time=160,
            location_id=slot.location.location_id,
            announcement=slot.client.announcement,
            new_path=None,
        )
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.CLOUD, location_id=slot.location.location_id
            ),
            start=165,
            duration=10,
            added_ms=80.0,
        )
        scenario = Scenario(small_world, (fault,), (withdraw,))
        pipeline = BlameItPipeline(scenario, config=BlameItConfig(history_days=1))
        pipeline.warmup(0, 144, stride=4)
        report = pipeline.run(150, 200)
        assert report.total_quartets > 0
        assert report.probes_total >= 0

    def test_probe_of_withdrawn_prefix_counts_but_yields_none(self, small_world):
        slot = small_world.slots[0]
        withdraw = RerouteEvent(
            time=100,
            location_id=slot.location.location_id,
            announcement=slot.client.announcement,
            new_path=None,
        )
        scenario = Scenario(small_world, (), (withdraw,))
        from repro.cloud.traceroute import TracerouteEngine

        engine = TracerouteEngine(scenario, np.random.default_rng(0))
        result = engine.issue(slot.location.location_id, slot.client.prefix24, 110)
        assert result is None
        assert engine.probes_issued == 1


class TestColdStart:
    def test_run_without_warmup_degrades_gracefully(self, small_world):
        """No expected-RTT history: everything is 'insufficient', never a
        wrong blame."""
        fault = Fault(
            fault_id=0,
            target=FaultTarget(
                kind=SegmentKind.CLOUD,
                location_id=small_world.locations[0].location_id,
            ),
            start=150,
            duration=10,
            added_ms=90.0,
        )
        scenario = Scenario(small_world, (fault,), ())
        pipeline = BlameItPipeline(scenario, config=BlameItConfig(history_days=1))
        report = pipeline.run(150, 165)  # no warmup at all
        wrong = (
            report.blame_counts.get(Blame.CLOUD, 0)
            + report.blame_counts.get(Blame.MIDDLE, 0)
            + report.blame_counts.get(Blame.CLIENT, 0)
        )
        assert wrong == 0
        assert report.blame_counts.get(Blame.INSUFFICIENT, 0) > 0

    def test_empty_fixed_table_all_insufficient(self, small_world):
        scenario = Scenario(small_world, (), ())
        pipeline = BlameItPipeline(
            scenario, config=BlameItConfig(history_days=1),
            fixed_table=ExpectedRTTTable(),
        )
        report = pipeline.run(150, 160)
        named = sum(
            report.blame_counts.get(b, 0)
            for b in (Blame.CLOUD, Blame.MIDDLE, Blame.CLIENT)
        )
        assert named == 0


class TestStarvedBudget:
    def test_denied_probes_are_counted(self, small_world):
        pool = small_world.middle_asn_pool()
        faults = tuple(
            Fault(
                fault_id=i,
                target=FaultTarget(kind=SegmentKind.MIDDLE, asn=pool[i % len(pool)]),
                start=150 + i,
                duration=20,
                added_ms=90.0,
            )
            for i in range(4)
        )
        scenario = Scenario(small_world, faults, ())
        pipeline = BlameItPipeline(
            scenario,
            config=BlameItConfig(history_days=1, probe_budget_per_window=1),
        )
        pipeline.warmup(0, 144, stride=4)
        report = pipeline.run(150, 190)
        # The budget is enforced per window; with 4 overlapping issues at
        # shared locations some probes must be denied or deferred.
        assert report.probes_on_demand <= (190 - 150) // 3 * len(
            small_world.locations
        )


class TestDegenerateWindows:
    def test_empty_bucket_range(self, small_scenario):
        pipeline = BlameItPipeline(
            small_scenario, config=BlameItConfig(history_days=1)
        )
        report = pipeline.run(150, 150)
        assert report.total_quartets == 0
        assert report.alerts == []

    def test_single_bucket_run(self, small_scenario):
        pipeline = BlameItPipeline(
            small_scenario, config=BlameItConfig(history_days=1)
        )
        pipeline.warmup(0, 48, stride=4)
        report = pipeline.run(150, 151)
        assert report.total_quartets > 0

    def test_night_bucket_mostly_gated(self, small_scenario):
        """A dead-of-night bucket yields few gated quartets and no crash."""
        quartets = small_scenario.generate_quartets(96)  # 08:00 UTC-ish
        gated = [q for q in quartets if q.n_samples >= 10]
        assert len(gated) <= len(quartets)
