"""Tests for repro.core.alerts: ranking and routing."""

import pytest

from repro.core.alerts import Alert, AlertManager, Team
from repro.core.blame import Blame


def _alert(blame=Blame.MIDDLE, impact=100.0, first_seen=0, loc="edge-A") -> Alert:
    return Alert(
        blame=blame,
        location_id=loc,
        middle=(10,),
        culprit_asn=10,
        first_seen=first_seen,
        duration=5,
        impact=impact,
        confidence=0.9,
        detail="test alert",
    )


class TestRouting:
    def test_segment_to_team(self):
        assert _alert(Blame.CLOUD).team is Team.CLOUD_INFRA
        assert _alert(Blame.MIDDLE).team is Team.NETWORKING
        assert _alert(Blame.CLIENT).team is Team.CLIENT_COMMS
        assert _alert(Blame.AMBIGUOUS).team is None


class TestManager:
    def test_top_k_by_impact(self):
        manager = AlertManager(top_k=2)
        manager.add(_alert(impact=10))
        manager.add(_alert(impact=1000))
        manager.add(_alert(impact=100))
        tickets = manager.tickets()
        assert len(tickets) == 2
        assert [t.impact for t in tickets] == [1000, 100]

    def test_tie_break_by_onset(self):
        manager = AlertManager(top_k=1)
        manager.add(_alert(impact=50, first_seen=9))
        manager.add(_alert(impact=50, first_seen=2))
        assert manager.tickets()[0].first_seen == 2

    def test_tickets_for_team(self):
        manager = AlertManager(top_k=10)
        manager.add(_alert(Blame.CLOUD, impact=5))
        manager.add(_alert(Blame.MIDDLE, impact=50))
        assert len(manager.tickets_for(Team.NETWORKING)) == 1
        assert len(manager.tickets_for(Team.CLOUD_INFRA)) == 1
        assert manager.tickets_for(Team.CLIENT_COMMS) == []

    def test_len_counts_candidates(self):
        manager = AlertManager(top_k=1)
        manager.add(_alert())
        manager.add(_alert())
        assert len(manager) == 2
        assert len(manager.tickets()) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AlertManager(top_k=0)
