"""Tests for repro.core.thresholds: expected-RTT learning."""

import numpy as np
import pytest

from repro.core.quartet import Quartet, QuartetBatch
from repro.core.thresholds import ExpectedRTTLearner
from repro.net.geo import Region


def _quartet(time=0, rtt=40.0, loc="edge-X", mobile=False, middle=(10,)) -> Quartet:
    return Quartet(
        time=time,
        prefix24=1,
        location_id=loc,
        mobile=mobile,
        mean_rtt_ms=rtt,
        n_samples=20,
        users=10,
        client_asn=65000,
        middle=middle,
        region=Region.USA,
    )


class TestLearner:
    def test_median_learned(self):
        learner = ExpectedRTTLearner()
        for rtt in (10.0, 20.0, 30.0, 40.0, 50.0):
            learner.observe(_quartet(rtt=rtt))
        table = learner.table()
        assert table.expected_cloud("edge-X", False) == pytest.approx(30.0)
        assert table.expected_middle((10,), False) == pytest.approx(30.0)

    def test_mobile_separated(self):
        learner = ExpectedRTTLearner()
        learner.observe(_quartet(rtt=30.0, mobile=False))
        learner.observe(_quartet(rtt=90.0, mobile=True))
        table = learner.table()
        assert table.expected_cloud("edge-X", False) == pytest.approx(30.0)
        assert table.expected_cloud("edge-X", True) == pytest.approx(90.0)

    def test_unknown_key_is_none(self):
        table = ExpectedRTTLearner().table()
        assert table.expected_cloud("edge-X", False) is None
        assert table.expected_middle((99,), False) is None

    def test_rolling_window_excludes_old_days(self):
        learner = ExpectedRTTLearner(history_days=2)
        learner.observe(_quartet(time=0, rtt=10.0))  # day 0
        learner.observe(_quartet(time=3 * 288, rtt=100.0))  # day 3
        learner.observe(_quartet(time=4 * 288, rtt=110.0))  # day 4
        table = learner.table(as_of_day=4)
        # Days 3 and 4 only: median of (100, 110).
        assert table.expected_cloud("edge-X", False) == pytest.approx(105.0)

    def test_unwindowed_table_uses_everything(self):
        learner = ExpectedRTTLearner(history_days=2)
        learner.observe(_quartet(time=0, rtt=10.0))
        learner.observe(_quartet(time=5 * 288, rtt=100.0))
        table = learner.table()
        assert table.expected_cloud("edge-X", False) == pytest.approx(55.0)

    def test_prune(self):
        learner = ExpectedRTTLearner()
        learner.observe(_quartet(time=0, rtt=10.0))
        learner.observe(_quartet(time=10 * 288, rtt=50.0))
        learner.prune_before(day=5)
        table = learner.table()
        assert table.expected_cloud("edge-X", False) == pytest.approx(50.0)

    def test_section_43_worked_example(self):
        """§4.3: history uniform in [35, 45] learns ~40ms; a fault moving
        RTTs to [40, 70] leaves nearly all above the learned value but
        only a third above the 50ms badness target."""
        learner = ExpectedRTTLearner()
        for index, rtt in enumerate(range(35, 46)):
            learner.observe(_quartet(time=index, rtt=float(rtt)))
        expected = learner.table().expected_cloud("edge-X", False)
        assert expected == pytest.approx(40.0)
        faulty = [40 + 30 * i / 10 for i in range(11)]  # uniform [40, 70]
        above_learned = sum(1 for r in faulty if r > expected) / len(faulty)
        above_target = sum(1 for r in faulty if r > 50.0) / len(faulty)
        assert above_learned >= 0.8  # τ fires with the learned median
        assert above_target < 0.8  # τ never fires with the raw target

    def test_reservoir_bounded_memory(self):
        learner = ExpectedRTTLearner()
        for index in range(5000):
            learner.observe(_quartet(time=index % 288, rtt=float(index % 100)))
        reservoirs = list(learner._cloud.values())
        assert all(len(r.values) <= 256 for r in reservoirs)
        # Median of 0..99 stream should still be close to 50.
        table = learner.table()
        assert table.expected_cloud("edge-X", False) == pytest.approx(50.0, abs=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExpectedRTTLearner(history_days=0)


def _assert_learners_identical(a: ExpectedRTTLearner, b: ExpectedRTTLearner):
    """Full-state equality: keys, reservoir contents, counts, and seeds."""
    for store_a, store_b in ((a._cloud, b._cloud), (a._middle, b._middle)):
        assert list(store_a) == list(store_b)  # insertion order included
        for key in store_a:
            assert store_a[key].values == store_b[key].values
            assert store_a[key].seen == store_b[key].seen
    assert a._seed == b._seed


class TestColumnarLearner:
    """observe_batch must be byte-identical to the scalar row loop."""

    def _random_quartets(self, rng, n):
        return [
            _quartet(
                time=int(rng.integers(0, 3 * 288)),
                rtt=float(rng.uniform(10.0, 120.0)),
                loc=f"edge-{rng.integers(0, 4)}",
                mobile=bool(rng.integers(0, 2)),
                middle=(int(rng.integers(10, 14)),),
            )
            for _ in range(n)
        ]

    @pytest.mark.parametrize("seed", range(5))
    def test_batch_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        quartets = self._random_quartets(rng, 400)
        scalar = ExpectedRTTLearner()
        batched = ExpectedRTTLearner()
        scalar.observe_all(quartets)
        batched.observe_batch(QuartetBatch.from_quartets(quartets))
        _assert_learners_identical(scalar, batched)

    def test_reservoir_tie_breaking(self):
        """Past the reservoir size, replacement draws from each
        reservoir's own RNG stream; grouping the adds must consume those
        streams in exactly the scalar order, so a follow-up batch on the
        already-full reservoirs still matches value-for-value."""
        rng = np.random.default_rng(99)
        # One hot key so the reservoir overflows (256) within one batch.
        hot = [
            _quartet(time=i % 288, rtt=float(rng.uniform(10, 90)))
            for i in range(600)
        ]
        scalar = ExpectedRTTLearner()
        batched = ExpectedRTTLearner()
        scalar.observe_all(hot)
        batched.observe_batch(QuartetBatch.from_quartets(hot))
        _assert_learners_identical(scalar, batched)
        # Second round on the now-full reservoirs: every add is a
        # replacement decision, so any RNG-stream skew would surface.
        more = [
            _quartet(time=i % 288, rtt=float(rng.uniform(10, 90)))
            for i in range(300)
        ]
        scalar.observe_all(more)
        batched.observe_batch(QuartetBatch.from_quartets(more))
        _assert_learners_identical(scalar, batched)

    def test_seed_allocation_order(self):
        """New reservoirs take seeds in first-occurrence row order, cloud
        lane before middle lane — matching the scalar loop."""
        quartets = [
            _quartet(time=0, loc="edge-B", middle=(20,)),
            _quartet(time=0, loc="edge-A", middle=(21,)),
            _quartet(time=288, loc="edge-A", middle=(20,)),  # new day
        ]
        scalar = ExpectedRTTLearner()
        batched = ExpectedRTTLearner()
        scalar.observe_all(quartets)
        batched.observe_batch(QuartetBatch.from_quartets(quartets))
        _assert_learners_identical(scalar, batched)

    def test_empty_batch_is_noop(self):
        learner = ExpectedRTTLearner()
        learner.observe_batch(QuartetBatch.from_quartets([]))
        assert learner._seed == 0 and not learner._cloud and not learner._middle


class TestTableCache:
    def test_snapshot_reused_when_history_unchanged(self):
        learner = ExpectedRTTLearner()
        learner.observe(_quartet(rtt=40.0))
        assert learner.table() is learner.table()
        assert learner.table(as_of_day=0) is learner.table(as_of_day=0)

    def test_distinct_windows_cached_separately(self):
        learner = ExpectedRTTLearner()
        learner.observe(_quartet(rtt=40.0))
        assert learner.table(as_of_day=0) is not learner.table(as_of_day=5)

    def test_observe_invalidates(self):
        learner = ExpectedRTTLearner()
        learner.observe(_quartet(rtt=40.0))
        before = learner.table()
        learner.observe(_quartet(rtt=90.0, time=288))
        after = learner.table()
        assert after is not before
        assert after.expected_cloud("edge-X", False) != before.expected_cloud(
            "edge-X", False
        )

    def test_prune_invalidates(self):
        learner = ExpectedRTTLearner()
        learner.observe(_quartet(rtt=40.0, time=0))
        learner.observe(_quartet(rtt=90.0, time=20 * 288))
        before = learner.table()
        learner.prune_before(day=10)
        after = learner.table()
        assert after is not before
        assert after.expected_cloud("edge-X", False) == pytest.approx(90.0)


class TestDistributionShiftDetector:
    def _trained(self, rng_seed=0):
        from repro.core.thresholds import DistributionShiftDetector
        import numpy as np

        detector = DistributionShiftDetector(ks_threshold=0.3)
        rng = np.random.default_rng(rng_seed)
        for _ in range(400):
            detector.observe_reference(("loc",), float(rng.normal(40.0, 4.0)))
        return detector, rng

    def test_detects_upward_shift(self):
        detector, rng = self._trained()
        shifted = [float(rng.normal(60.0, 4.0)) for _ in range(30)]
        assert detector.shifted(("loc",), shifted) is True

    def test_quiet_on_same_distribution(self):
        detector, rng = self._trained()
        same = [float(rng.normal(40.0, 4.0)) for _ in range(30)]
        assert detector.shifted(("loc",), same) is False

    def test_one_sided_ignores_improvement(self):
        """RTTs getting *better* must not raise a badness flag."""
        detector, rng = self._trained()
        improved = [float(rng.normal(20.0, 4.0)) for _ in range(30)]
        assert detector.shifted(("loc",), improved) is False

    def test_no_reference_no_decision(self):
        detector, _ = self._trained()
        assert detector.shifted(("unknown",), [50.0, 60.0]) is None
        assert detector.shifted(("loc",), []) is None

    def test_reference_bounded(self):
        detector, rng = self._trained()
        for _ in range(5000):
            detector.observe_reference(("loc",), 40.0)
        assert detector.reference_size(("loc",)) <= 4 * 256

    def test_threshold_validation(self):
        from repro.core.thresholds import DistributionShiftDetector

        with pytest.raises(ValueError):
            DistributionShiftDetector(ks_threshold=0.0)
