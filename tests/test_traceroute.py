"""Tests for repro.cloud.traceroute: the engine and probe accounting."""

import numpy as np
import pytest

from repro.cloud.traceroute import TracerouteEngine, TracerouteResult, TracerouteView


class _StubOracle:
    """Fixed view for a known target; None elsewhere."""

    def __init__(self):
        self.view = TracerouteView(
            path=(1, 10, 20, 30), cumulative_ms=(4.0, 6.0, 8.0, 9.0)
        )

    def traceroute_view(self, location_id, prefix24, time):
        if prefix24 == 100:
            return self.view
        return None


class TestTracerouteEngine:
    @pytest.fixture
    def engine(self):
        return TracerouteEngine(_StubOracle(), np.random.default_rng(0), hop_noise_ms=0.0)

    def test_issue_returns_view(self, engine):
        result = engine.issue("edge-X", 100, time=5)
        assert result.path == (1, 10, 20, 30)
        assert result.cumulative_ms == pytest.approx((4.0, 6.0, 8.0, 9.0))
        assert result.time == 5

    def test_unreachable_counts_against_budget(self, engine):
        assert engine.issue("edge-X", 999, time=0) is None
        assert engine.probes_issued == 1

    def test_per_location_accounting(self, engine):
        engine.issue("edge-A", 100, 0)
        engine.issue("edge-A", 100, 1)
        engine.issue("edge-B", 100, 0)
        assert engine.probes_by_location == {"edge-A": 2, "edge-B": 1}
        assert engine.probes_issued == 3
        engine.reset_counters()
        assert engine.probes_issued == 0
        assert engine.probes_by_location == {}

    def test_noise_keeps_cumulative_monotone(self):
        engine = TracerouteEngine(
            _StubOracle(), np.random.default_rng(7), hop_noise_ms=5.0
        )
        for _ in range(50):
            result = engine.issue("edge-X", 100, 0)
            assert list(result.cumulative_ms) == sorted(result.cumulative_ms)


class TestTracerouteResult:
    def test_contribution_decomposition(self):
        result = TracerouteResult(
            location_id="edge-X",
            prefix24=100,
            time=0,
            path=(1, 10, 20, 30),
            cumulative_ms=(4.0, 6.0, 8.0, 9.0),
        )
        contributions = result.contribution_ms()
        assert contributions == pytest.approx({1: 4.0, 10: 2.0, 20: 2.0, 30: 1.0})
        assert result.end_to_end_ms == pytest.approx(9.0)

    def test_contribution_floor_at_zero(self):
        result = TracerouteResult(
            location_id="edge-X",
            prefix24=100,
            time=0,
            path=(1, 10, 30),
            cumulative_ms=(4.0, 3.5, 9.0),  # inversion artifact
        )
        contributions = result.contribution_ms()
        assert contributions[10] == 0.0
