"""Tests for repro.net.geo: distances, propagation, the metro catalogue."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.geo import (
    FIBER_KM_PER_MS,
    PATH_STRETCH,
    Metro,
    Region,
    WORLD_METROS,
    haversine_km,
    metro_by_name,
    metro_distance_km,
    metros_in_region,
    propagation_rtt_ms,
)

_LAT = st.floats(min_value=-90, max_value=90, allow_nan=False)
_LON = st.floats(min_value=-180, max_value=180, allow_nan=False)


class TestHaversine:
    def test_zero_distance_same_point(self):
        assert haversine_km(47.6, -122.3, 47.6, -122.3) == pytest.approx(0.0)

    def test_known_distance_seattle_london(self):
        seattle = metro_by_name("Seattle")
        london = metro_by_name("London")
        distance = metro_distance_km(seattle, london)
        assert 7600 < distance < 7900  # great-circle ~7740 km

    def test_antipodal_is_half_circumference(self):
        distance = haversine_km(0, 0, 0, 180)
        assert distance == pytest.approx(math.pi * 6371.0, rel=1e-6)

    @given(lat1=_LAT, lon1=_LON, lat2=_LAT, lon2=_LON)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        forward = haversine_km(lat1, lon1, lat2, lon2)
        backward = haversine_km(lat2, lon2, lat1, lon1)
        assert forward == pytest.approx(backward, abs=1e-9)

    @given(lat1=_LAT, lon1=_LON, lat2=_LAT, lon2=_LON)
    def test_bounded_by_half_circumference(self, lat1, lon1, lat2, lon2):
        distance = haversine_km(lat1, lon1, lat2, lon2)
        assert 0.0 <= distance <= math.pi * 6371.0 + 1e-6


class TestPropagation:
    def test_zero_distance_zero_rtt(self):
        assert propagation_rtt_ms(0.0) == 0.0

    def test_scaling_with_distance(self):
        assert propagation_rtt_ms(2000) == pytest.approx(
            2 * 2000 * PATH_STRETCH / FIBER_KM_PER_MS
        )

    def test_custom_stretch(self):
        assert propagation_rtt_ms(1000, stretch=1.0) == pytest.approx(10.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            propagation_rtt_ms(-1.0)

    def test_transatlantic_rtt_plausible(self):
        # NY <-> London should land in the 55-75 ms ballpark.
        ny = metro_by_name("New York")
        london = metro_by_name("London")
        rtt = propagation_rtt_ms(metro_distance_km(ny, london))
        assert 50 < rtt < 110


class TestCatalogue:
    def test_every_region_has_metros(self):
        for region in Region:
            assert metros_in_region(region), f"no metros for {region}"

    def test_metro_names_unique(self):
        names = [m.name for m in WORLD_METROS]
        assert len(names) == len(set(names))

    def test_metro_by_name_roundtrip(self):
        for metro in WORLD_METROS:
            assert metro_by_name(metro.name) is metro

    def test_metro_by_name_unknown(self):
        with pytest.raises(KeyError):
            metro_by_name("Atlantis")

    def test_metros_in_region_filter(self):
        for metro in metros_in_region(Region.BRAZIL):
            assert metro.region is Region.BRAZIL

    def test_metro_str(self):
        metro = Metro("Testville", Region.USA, 1.0, 2.0)
        assert "Testville" in str(metro)
        assert "USA" in str(metro)
