"""Tests for repro.net.addressing: /24 keys and BGP prefixes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addressing import (
    BGPPrefix,
    Prefix24Allocator,
    format_prefix24,
    parse_prefix24,
    prefix24_network_address,
)

_P24 = st.integers(min_value=0, max_value=(1 << 24) - 1)


class TestParseFormat:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.2.3", (1 << 16) | (2 << 8) | 3),
            ("1.2.3.0/24", (1 << 16) | (2 << 8) | 3),
            ("1.2.3.77", (1 << 16) | (2 << 8) | 3),
            ("0.0.0", 0),
            ("255.255.255", (1 << 24) - 1),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_prefix24(text) == expected

    @pytest.mark.parametrize("bad", ["1.2", "1.2.3.4.5", "300.1.2", "a.b.c"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_prefix24(bad)

    @given(prefix=_P24)
    def test_roundtrip(self, prefix):
        assert parse_prefix24(format_prefix24(prefix)) == prefix

    def test_format_out_of_range(self):
        with pytest.raises(ValueError):
            format_prefix24(1 << 24)

    @given(prefix=_P24)
    def test_network_address(self, prefix):
        assert prefix24_network_address(prefix) == prefix << 8


class TestBGPPrefix:
    def test_contains_own_prefix24s(self):
        block = BGPPrefix(network=parse_prefix24("10.0.0") << 8, length=22)
        members = list(block.prefix24s())
        assert len(members) == 4 == block.prefix24_count()
        for member in members:
            assert block.contains_prefix24(member)

    def test_does_not_contain_neighbors(self):
        block = BGPPrefix(network=parse_prefix24("10.0.4") << 8, length=22)
        assert not block.contains_prefix24(parse_prefix24("10.0.3"))
        assert not block.contains_prefix24(parse_prefix24("10.0.8"))

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            BGPPrefix(network=(parse_prefix24("10.0.1") << 8), length=22)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            BGPPrefix(network=0, length=4)
        with pytest.raises(ValueError):
            BGPPrefix(network=0, length=25)

    def test_str(self):
        block = BGPPrefix(network=parse_prefix24("10.1.0") << 8, length=20)
        assert str(block) == "10.1.0.0/20"

    @given(prefix=_P24, length=st.integers(min_value=8, max_value=24))
    def test_from_prefix24_contains_it(self, prefix, length):
        block = BGPPrefix.from_prefix24(prefix, length)
        assert block.contains_prefix24(prefix)
        assert block.length == length

    @given(prefix=_P24)
    def test_slash24_is_singleton(self, prefix):
        block = BGPPrefix.from_prefix24(prefix, 24)
        assert list(block.prefix24s()) == [prefix]


class TestAllocator:
    def test_no_overlap(self):
        allocator = Prefix24Allocator()
        seen: set[int] = set()
        for length in (24, 22, 20, 24, 22):
            block = allocator.allocate_block(length)
            members = set(block.prefix24s())
            assert not members & seen
            seen |= members

    def test_alignment(self):
        allocator = Prefix24Allocator()
        allocator.allocate_block(24)
        block = allocator.allocate_block(20)
        # A /20's network must be aligned to 16 consecutive /24s.
        assert (block.network >> 8) % 16 == 0

    def test_exhaustion(self):
        allocator = Prefix24Allocator(start=(1 << 24) - 4)
        with pytest.raises(RuntimeError):
            allocator.allocate_block(8)
