"""Property-based invariants of the scenario's ground truth.

These are the contracts every consumer (quartets, traceroutes, oracle)
relies on; hypothesis drives fault shape, magnitude, timing and target.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.asn import middle_asns
from repro.sim.faults import Direction, Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario


def _slot_with_middle(world):
    return next(
        s
        for s in world.slots
        if len(middle_asns(world.mapper.path_for(s.location, s.client) or (0, 0))) >= 1
    )


_MAGNITUDE = st.floats(min_value=15.0, max_value=200.0)
_START = st.integers(min_value=0, max_value=200)
_DURATION = st.integers(min_value=1, max_value=60)
_KINDS = st.sampled_from(["cloud", "cloud-partial", "middle", "client", "reverse"])


def _build_fault(world, scenario, kind, start, duration, added):
    slot = _slot_with_middle(world)
    path = world.mapper.path_for(slot.location, slot.client)
    if kind == "cloud":
        target = FaultTarget(
            kind=SegmentKind.CLOUD, location_id=slot.location.location_id
        )
    elif kind == "cloud-partial":
        target = FaultTarget(
            kind=SegmentKind.CLOUD,
            location_id=slot.location.location_id,
            affected_fraction=0.5,
        )
    elif kind == "middle":
        target = FaultTarget(kind=SegmentKind.MIDDLE, asn=middle_asns(path)[0])
    elif kind == "client":
        target = FaultTarget(kind=SegmentKind.CLIENT, asn=slot.client.asn)
    else:  # reverse
        reverse_middle = scenario.reverse_middle(slot.client.asn)
        if not reverse_middle:
            target = FaultTarget(kind=SegmentKind.CLIENT, asn=slot.client.asn)
        else:
            target = FaultTarget(
                kind=SegmentKind.MIDDLE,
                asn=reverse_middle[0],
                direction=Direction.REVERSE,
            )
    return slot, Fault(
        fault_id=0, target=target, start=start, duration=duration, added_ms=added
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(kind=_KINDS, start=_START, duration=_DURATION, added=_MAGNITUDE)
def test_traceroute_total_equals_true_rtt(
    small_world, kind, start, duration, added
):
    """The forward traceroute's end-to-end value IS the path RTT,
    whatever faults are active."""
    probe = Scenario(small_world, (), ())
    slot, fault = _build_fault(small_world, probe, kind, start, duration, added)
    scenario = Scenario(small_world, (fault,), ())
    for time in (max(0, start - 1), start, start + duration // 2, start + duration):
        view = scenario.traceroute_view(
            slot.location.location_id, slot.client.prefix24, time
        )
        rtt = scenario.true_rtt_ms(
            slot.location.location_id, slot.client.prefix24, time
        )
        assert view.cumulative_ms[-1] == pytest.approx(rtt)
        assert list(view.cumulative_ms) == sorted(view.cumulative_ms)
        assert all(v >= 0 for v in view.cumulative_ms)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(kind=_KINDS, start=_START, duration=_DURATION, added=_MAGNITUDE)
def test_fault_window_is_exact(small_world, kind, start, duration, added):
    """RTT is inflated during [start, start+duration) and only then."""
    probe = Scenario(small_world, (), ())
    slot, fault = _build_fault(small_world, probe, kind, start, duration, added)
    scenario = Scenario(small_world, (fault,), ())
    healthy = Scenario(small_world, (), ())
    loc = slot.location.location_id
    prefix = slot.client.prefix24
    if kind == "cloud-partial" and not fault.target.covers_prefix(prefix):
        return  # this /24 is outside the partial fault's hash subset
    during = scenario.true_rtt_ms(loc, prefix, start)
    clean_during = healthy.true_rtt_ms(loc, prefix, start)
    assert during == pytest.approx(clean_during + added)
    after = scenario.true_rtt_ms(loc, prefix, start + duration)
    clean_after = healthy.true_rtt_ms(loc, prefix, start + duration)
    assert after == pytest.approx(clean_after)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(kind=_KINDS, start=_START, duration=_DURATION)
def test_oracle_names_the_injected_fault(small_world, kind, start, duration):
    """With one large fault active, the oracle names its target."""
    added = 80.0
    probe = Scenario(small_world, (), ())
    slot, fault = _build_fault(small_world, probe, kind, start, duration, added)
    scenario = Scenario(small_world, (fault,), ())
    loc = slot.location.location_id
    prefix = slot.client.prefix24
    if kind == "cloud-partial" and not fault.target.covers_prefix(prefix):
        return
    truth = scenario.true_culprit(loc, prefix, start)
    assert truth is not None
    segment, asn = truth
    if kind in ("cloud", "cloud-partial"):
        assert (segment, asn) == (SegmentKind.CLOUD, small_world.cloud_asn)
    elif kind == "client":
        assert (segment, asn) == (SegmentKind.CLIENT, slot.client.asn)
    else:
        assert segment is SegmentKind.MIDDLE
        assert asn == fault.target.asn


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    time=st.integers(min_value=0, max_value=287),
)
def test_quartet_generation_invariants(small_scenario, small_world, seed, time):
    """Quartets are well-formed for any bucket and RNG stream."""
    quartets = small_scenario.generate_quartets(time, np.random.default_rng(seed))
    prefixes = {p.prefix24 for p in small_world.population}
    for quartet in quartets:
        assert quartet.time == time
        assert quartet.prefix24 in prefixes
        assert quartet.n_samples >= 1
        assert quartet.mean_rtt_ms >= 1.0
        client = small_world.population.get(quartet.prefix24)
        assert quartet.client_asn == client.asn
        assert quartet.mobile == client.mobile
        assert quartet.users == client.users
