"""Tests for repro.sim.workload: diurnal/weekly activity shapes."""

import numpy as np
import pytest

from repro.net.geo import metro_by_name
from repro.sim.workload import (
    ActivityModel,
    BUCKETS_PER_DAY,
    WorkloadParams,
    day_index,
    diurnal_factor,
    is_weekend,
    local_hour,
    weekend_factor,
)


class TestLocalTime:
    def test_utc_metro(self):
        greenwich_like = metro_by_name("London")  # lon ≈ 0 (slightly west)
        midnight = local_hour(greenwich_like, 0)
        assert min(midnight, 24.0 - midnight) < 0.1  # ~00:00, may wrap
        assert local_hour(greenwich_like, 144) == pytest.approx(12.0, abs=0.1)

    def test_offset_east(self):
        tokyo = metro_by_name("Tokyo")  # lon ≈ 139.65 → +9.3h
        assert local_hour(tokyo, 0) == pytest.approx(139.65 / 15, abs=0.01)

    def test_wraps_24(self):
        tokyo = metro_by_name("Tokyo")
        for bucket in range(0, BUCKETS_PER_DAY, 7):
            assert 0.0 <= local_hour(tokyo, bucket) < 24.0

    def test_day_index_and_weekend(self):
        assert day_index(0) == 0
        assert day_index(BUCKETS_PER_DAY) == 1
        assert not is_weekend(0)  # Monday
        assert is_weekend(5 * BUCKETS_PER_DAY)  # Saturday
        assert is_weekend(6 * BUCKETS_PER_DAY)  # Sunday
        assert not is_weekend(7 * BUCKETS_PER_DAY)  # next Monday


class TestDiurnalShape:
    def test_enterprise_peaks_midday(self):
        assert diurnal_factor(13.0, enterprise=True) > diurnal_factor(
            21.0, enterprise=True
        )
        assert diurnal_factor(13.0, enterprise=True) > diurnal_factor(
            3.0, enterprise=True
        )

    def test_home_peaks_evening(self):
        assert diurnal_factor(21.0, enterprise=False) > diurnal_factor(
            13.0, enterprise=False
        )
        assert diurnal_factor(21.0, enterprise=False) > diurnal_factor(
            3.0, enterprise=False
        )

    def test_always_positive(self):
        for hour in np.linspace(0, 24, 49):
            assert diurnal_factor(float(hour), True) > 0
            assert diurnal_factor(float(hour), False) > 0

    def test_weekend_factor(self):
        saturday = 5 * BUCKETS_PER_DAY
        assert weekend_factor(saturday, enterprise=True) < 1.0
        assert weekend_factor(saturday, enterprise=False) > 1.0
        assert weekend_factor(0, enterprise=True) == 1.0


class TestActivityModel:
    def test_expected_scales_with_users(self):
        model = ActivityModel()
        metro = metro_by_name("Chicago")
        small = model.expected_connections(10, metro, False, 150)
        large = model.expected_connections(100, metro, False, 150)
        assert large == pytest.approx(10 * small)

    def test_sample_is_poisson_like(self):
        model = ActivityModel(WorkloadParams(connections_per_user=1.0))
        metro = metro_by_name("Chicago")
        rng = np.random.default_rng(0)
        expected = model.expected_connections(50, metro, False, 150)
        draws = [
            model.sample_connections(50, metro, False, 150, rng) for _ in range(3000)
        ]
        assert np.mean(draws) == pytest.approx(expected, rel=0.05)

    def test_evening_weights_shape(self):
        model = ActivityModel()
        metro = metro_by_name("Madrid")
        weights = model.evening_weights(metro, enterprise=False)
        assert weights.shape == (BUCKETS_PER_DAY,)
        assert (weights > 0).all()
        # The peak bucket must fall in the local evening.
        peak_hour = local_hour(metro, int(weights.argmax()))
        assert 19.0 <= peak_hour <= 23.0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            WorkloadParams(connections_per_user=0.0)
