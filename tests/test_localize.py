"""Tests for repro.core.localize, including the paper's §5.2 example."""

import pytest

from repro.cloud.traceroute import TracerouteResult
from repro.core.localize import localize_culprit


def _trace(cumulative, path=(1, 10, 20, 30), loc="edge-A", prefix=1, time=0):
    return TracerouteResult(
        location_id=loc,
        prefix24=prefix,
        time=time,
        path=path,
        cumulative_ms=tuple(float(x) for x in cumulative),
    )


class TestPaperExample:
    """§5.2: path X - m1 - m2 - c; background (4, 6, 8, 9); during the
    incident (4, 60, 62, 64). m1's contribution went 2ms → 56ms."""

    def test_m1_blamed(self):
        baseline = _trace((4, 6, 8, 9), time=0)
        current = _trace((4, 60, 62, 64), time=12)
        verdict = localize_culprit(baseline, current)
        assert verdict.asn == 10  # m1 is the first middle hop
        assert verdict.delta_ms == pytest.approx(54.0)
        assert verdict.paths_match
        assert verdict.baseline_age == 12
        assert verdict.confident


class TestComparison:
    def test_cloud_culprit(self):
        baseline = _trace((4, 6, 8, 9))
        current = _trace((50, 52, 54, 55), time=1)
        assert localize_culprit(baseline, current).asn == 1

    def test_client_culprit(self):
        baseline = _trace((4, 6, 8, 9))
        current = _trace((4, 6, 8, 70), time=1)
        assert localize_culprit(baseline, current).asn == 30

    def test_no_increase_no_verdict(self):
        baseline = _trace((4, 6, 8, 9))
        current = _trace((4.5, 6.5, 8.2, 9.4), time=1)
        verdict = localize_culprit(baseline, current)
        assert verdict.asn is None
        assert not verdict.confident

    def test_min_delta_configurable(self):
        baseline = _trace((4, 6, 8, 9))
        current = _trace((4, 13, 15, 16), time=1)  # m1 +7ms
        assert localize_culprit(baseline, current, min_delta_ms=10.0).asn is None
        assert localize_culprit(baseline, current, min_delta_ms=5.0).asn == 10

    def test_largest_increase_wins(self):
        baseline = _trace((4, 6, 8, 9))
        current = _trace((4, 16, 48, 49), time=1)  # m1 +10, m2 +30
        assert localize_culprit(baseline, current).asn == 20


class TestStaleBaselines:
    def test_path_mismatch_flagged(self):
        baseline = _trace((4, 6, 8, 9), path=(1, 10, 20, 30))
        current = _trace((4, 40, 42, 43), path=(1, 11, 20, 30), time=1)
        verdict = localize_culprit(baseline, current)
        assert not verdict.paths_match
        assert not verdict.confident

    def test_new_as_full_contribution_counts(self):
        """A stale baseline makes a merely-new AS look like the culprit —
        the Figure 13 failure mode."""
        baseline = _trace((4, 6, 8, 9), path=(1, 10, 20, 30))
        # AS 11 replaced AS 10; it contributes a healthy 36ms but has no
        # baseline entry, so it shows the biggest "increase".
        current = _trace((4, 40, 42, 43), path=(1, 11, 20, 30), time=1)
        assert localize_culprit(baseline, current).asn == 11

    def test_cross_prefix_same_path_ok(self):
        """Background probes cover paths, not prefixes; comparing across
        /24s on the same path is supported."""
        baseline = _trace((4, 6, 8, 9), prefix=1)
        current = _trace((4, 60, 62, 64), prefix=2, time=1)
        assert localize_culprit(baseline, current).asn == 10

    def test_cross_location_rejected(self):
        baseline = _trace((4, 6, 8, 9), loc="edge-A")
        current = _trace((4, 60, 62, 64), loc="edge-B", time=1)
        with pytest.raises(ValueError):
            localize_culprit(baseline, current)
