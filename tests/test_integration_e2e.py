"""End-to-end integration: several concurrent faults, one pipeline run.

The closest thing to a production day: a cloud overload, a transit
fault, and a client-ISP maintenance overlapping in time. The pipeline
must keep them apart — each surfaces as its own issue with the right
segment and culprit, and the alert ranking reflects measured impact.
"""

import pytest

from repro.core.blame import Blame
from repro.core.config import BlameItConfig
from repro.core.pipeline import BlameItPipeline
from repro.net.asn import middle_asns
from repro.sim.faults import Fault, FaultTarget, SegmentKind
from repro.sim.scenario import Scenario


@pytest.fixture(scope="module")
def multi_fault_run(small_world):
    world = small_world
    # Pick three independent targets: a location, a middle AS not
    # dominating that location, and a client AS not behind that AS.
    location = world.locations[0]
    usage: dict[int, int] = {}
    for slot in world.slots:
        path = world.mapper.path_for(slot.location, slot.client)
        if path is None:
            continue
        for asn in middle_asns(path):
            usage[asn] = usage.get(asn, 0) + 1
    per_loc: dict[int, int] = {}
    loc_total = 0
    for slot in world.slots:
        if slot.location.location_id != location.location_id:
            continue
        loc_total += 1
        path = world.mapper.path_for(slot.location, slot.client)
        for asn in middle_asns(path or (0, 0)):
            per_loc[asn] = per_loc.get(asn, 0) + 1
    middle_asn = max(
        (a for a in usage if per_loc.get(a, 0) / max(1, loc_total) < 0.5),
        key=lambda a: usage[a],
    )
    client_asn = next(
        asn
        for asn in world.population.asns
        if all(
            middle_asn
            not in middle_asns(world.mapper.path_for(s.location, s.client) or (0, 0))
            for s in world.slots
            if s.client.asn == asn
        )
    )
    faults = (
        Fault(
            fault_id=0,
            target=FaultTarget(kind=SegmentKind.CLOUD, location_id=location.location_id),
            start=160,
            duration=14,
            added_ms=80.0,
        ),
        Fault(
            fault_id=1,
            target=FaultTarget(kind=SegmentKind.MIDDLE, asn=middle_asn),
            start=168,
            duration=16,
            added_ms=90.0,
        ),
        Fault(
            fault_id=2,
            target=FaultTarget(kind=SegmentKind.CLIENT, asn=client_asn),
            start=175,
            duration=14,
            added_ms=100.0,
        ),
    )
    scenario = Scenario(world, faults, ())
    pipeline = BlameItPipeline(
        scenario, config=BlameItConfig(history_days=1, probe_budget_per_window=8)
    )
    pipeline.warmup(0, 144, stride=3)
    report = pipeline.run(150, 220)
    return location, middle_asn, client_asn, report


class TestConcurrentFaults:
    def test_all_three_segments_blamed(self, multi_fault_run):
        _, _, _, report = multi_fault_run
        for blame in (Blame.CLOUD, Blame.MIDDLE, Blame.CLIENT):
            assert report.blame_counts.get(blame, 0) > 0, blame

    def test_cloud_issue_at_the_right_location(self, multi_fault_run):
        location, _, _, report = multi_fault_run
        assert any(
            issue.key == location.location_id for issue in report.closed_cloud
        )

    def test_middle_culprit_localized(self, multi_fault_run):
        _, middle_asn, _, report = multi_fault_run
        named = {
            item.verdict.asn
            for item in report.localized
            if item.verdict and item.verdict.asn
        }
        assert middle_asn in named

    def test_client_issue_tracked(self, multi_fault_run):
        _, _, client_asn, report = multi_fault_run
        assert any(issue.key == client_asn for issue in report.closed_client)

    def test_alerts_cover_all_faults(self, multi_fault_run):
        location, middle_asn, client_asn, report = multi_fault_run
        culprits = {alert.culprit_asn for alert in report.alerts}
        blames = {alert.blame for alert in report.alerts}
        assert {Blame.CLOUD, Blame.MIDDLE, Blame.CLIENT} <= blames
        assert client_asn in culprits
        assert middle_asn in culprits

    def test_alerts_impact_sorted(self, multi_fault_run):
        _, _, _, report = multi_fault_run
        impacts = [alert.impact for alert in report.alerts]
        assert impacts == sorted(impacts, reverse=True)

    def test_probe_spend_is_modest(self, multi_fault_run):
        _, _, _, report = multi_fault_run
        # Three incidents should cost a handful of on-demand traceroutes,
        # not a per-path sweep.
        assert 0 < report.probes_on_demand <= 40
